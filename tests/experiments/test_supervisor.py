"""Crash-isolated supervisor and the parallel experiment sweep.

Satellite regression: one failing experiment must not cost the
completed results of its siblings (the old ``run_parallel`` lost every
result when any future raised).
"""

import os
import signal
import time
import warnings

import pytest

import repro.supervisor
from repro.supervisor import (STATUSES, SupervisorPool, Task, supervise)


# -- picklable worker functions (process-pool requirement) -------------------

def _double(x):
    return x * 2


def _boom():
    raise RuntimeError("kaboom")


def _sleep_forever():
    time.sleep(600)


def _die_hard():
    os._exit(17)


def _flaky(path):
    """Fails on the first attempt, succeeds afterwards."""
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("transient")
    return "recovered"


class TestSupervise:
    def test_all_ok(self):
        report = supervise([Task("a", _double, (2,)),
                            Task("b", _double, (3,))], jobs=2)
        assert report.ok
        assert [o.value for o in report.outcomes] == [4, 6]
        assert [o.status for o in report.outcomes] == ["ok", "ok"]
        assert report.snapshot.as_dict()["supervisor.ok"] == 2

    def test_sibling_results_survive_a_failure(self):
        report = supervise(
            [Task("good", _double, (5,)), Task("bad", _boom),
             Task("also-good", _double, (6,))],
            jobs=2, retries=0)
        assert not report.ok
        by_key = {o.key: o for o in report.outcomes}
        assert by_key["good"].value == 10
        assert by_key["also-good"].value == 12
        assert by_key["bad"].status == "failed"
        assert "kaboom" in by_key["bad"].error

    def test_outcomes_keep_input_order(self):
        tasks = [Task(str(i), _double, (i,)) for i in range(7)]
        report = supervise(tasks, jobs=3)
        assert [o.key for o in report.outcomes] \
            == [str(i) for i in range(7)]

    def test_timeout_status(self):
        report = supervise([Task("hang", _sleep_forever),
                            Task("fine", _double, (1,))],
                           jobs=2, timeout=0.5, retries=0)
        by_key = {o.key: o for o in report.outcomes}
        assert by_key["hang"].status == "timeout"
        assert "timed out" in by_key["hang"].error
        assert by_key["fine"].status == "ok"

    def test_retry_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "attempted")
        report = supervise([Task("flaky", _flaky, (marker,))],
                           jobs=1, retries=1, backoff=0.05)
        outcome = report.outcomes[0]
        assert outcome.status == "retried"
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2
        assert report.snapshot.as_dict()["supervisor.requeued"] == 1

    def test_retries_exhaust_to_failed(self):
        report = supervise([Task("bad", _boom)], jobs=1, retries=2,
                           backoff=0.01)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 3

    def test_broken_pool_is_respawned(self):
        """A hard worker death neither wedges nor poisons siblings."""
        report = supervise([Task("die", _die_hard),
                            Task("live", _double, (7,))],
                           jobs=2, retries=1, backoff=0.05)
        by_key = {o.key: o for o in report.outcomes}
        assert by_key["live"].status in ("ok", "retried")
        assert by_key["live"].value == 14
        assert by_key["die"].status == "failed"
        assert report.snapshot.as_dict()["supervisor.pool_breaks"] >= 1

    def test_status_table_and_counts(self):
        report = supervise([Task("good", _double, (1,)),
                            Task("bad", _boom)], jobs=2, retries=0)
        counts = report.counts()
        assert counts["ok"] == 1 and counts["failed"] == 1
        assert set(counts) == set(STATUSES) | {"timeout_unsupported"}
        assert counts["timeout_unsupported"] == 0
        table = "\n".join(report.status_table())
        assert "good" in table and "ok" in table
        assert "bad" in table and "failed" in table


class TestSupervisorPoolEdges:
    """ISSUE 9 satellite: the pool's edge-case contracts."""

    def test_retries_zero_fails_fast(self):
        with SupervisorPool(jobs=1) as pool:
            report = pool.run([Task("bad", _boom)], retries=0)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert report.snapshot.as_dict()["supervisor.requeued"] == 0

    def test_backoff_zero_retries_immediately(self, tmp_path):
        marker = str(tmp_path / "attempted")
        with SupervisorPool(jobs=1) as pool:
            report = pool.run([Task("flaky", _flaky, (marker,))],
                              retries=1, backoff=0)
        outcome = report.outcomes[0]
        assert outcome.status == "retried"
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="needs SIGALRM")
    def test_task_that_times_out_on_every_attempt(self):
        with SupervisorPool(jobs=1) as pool:
            report = pool.run([Task("hang", _sleep_forever)],
                              timeout=0.3, retries=1, backoff=0.01)
        outcome = report.outcomes[0]
        assert outcome.status == "timeout"
        assert outcome.attempts == 2
        assert report.counts()["timeout"] == 1

    def test_pool_breakage_mid_batch_keeps_siblings_and_pool(self):
        """A hard worker death mid-batch: siblings' results survive
        and the same pool serves the next batch."""
        with SupervisorPool(jobs=2) as pool:
            first = pool.run([Task("die", _die_hard),
                              Task("live", _double, (8,))],
                             retries=1, backoff=0.05)
            by_key = {o.key: o for o in first.outcomes}
            assert by_key["live"].value == 16
            assert by_key["live"].status in ("ok", "retried")
            assert by_key["die"].status == "failed"
            assert first.snapshot.as_dict()[
                "supervisor.pool_breaks"] >= 1
            # The respawned pool is reusable for the next batch.
            second = pool.run([Task("a", _double, (2,)),
                               Task("b", _double, (3,))])
            assert second.ok
            assert [o.value for o in second.outcomes] == [4, 6]

    def test_timeout_unsupported_warns_once_and_is_counted(
            self, monkeypatch):
        monkeypatch.setattr(repro.supervisor, "_alarm_supported",
                            lambda: False)
        monkeypatch.setattr(repro.supervisor, "_TIMEOUT_WARNED", False)
        with pytest.warns(RuntimeWarning, match="SIGALRM"):
            report = supervise([Task("a", _double, (2,)),
                                Task("b", _double, (3,))],
                               jobs=2, timeout=5, retries=0)
        assert report.ok  # tasks ran, just unguarded
        counts = report.counts()
        assert counts["timeout_unsupported"] == 2
        assert report.timeout_unsupported == 2
        assert report.snapshot.as_dict()[
            "supervisor.timeout_unsupported"] == 2
        # The warning is one-time per process.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            supervise([Task("c", _double, (4,))], jobs=1, timeout=5,
                      retries=0)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]

    def test_no_timeout_requested_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = supervise([Task("a", _double, (1,))], jobs=1)
        assert report.ok
        assert report.timeout_unsupported == 0
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]


class TestRunParallel:
    def test_quick_sweep_returns_results(self):
        from repro.experiments.parallel import run_parallel
        outcome = run_parallel(["table4", "table2"], quick=True, jobs=2)
        assert outcome.ok
        assert len(outcome.results) == 2
        assert all(result is not None for result in outcome.results)

    def test_sweep_merges_worker_metrics(self):
        from repro.experiments.parallel import run_parallel
        outcome = run_parallel(["table4", "table2"], quick=True, jobs=2)
        metrics = outcome.metrics
        assert metrics["supervisor.submitted"] == 2
        assert metrics["supervisor.ok"] == 2
        # each worker's kernel-cache counters survive the process
        # boundary, namespaced and aggregated
        assert "worker.table2.kernels.cache.misses" in metrics
        assert "worker.table4.kernels.cache.misses" in metrics
        assert metrics["kernels.cache.misses"] == (
            metrics["worker.table2.kernels.cache.misses"]
            + metrics["worker.table4.kernels.cache.misses"])

    def test_failed_worker_contributes_no_metrics(self, monkeypatch):
        from repro.experiments.parallel import run_parallel
        monkeypatch.setenv("REPRO_FAIL_EXPERIMENT", "table4")
        outcome = run_parallel(["table2", "table4"], quick=True, jobs=2,
                               retries=0)
        assert "worker.table2.kernels.cache.misses" in outcome.metrics
        assert not any(name.startswith("worker.table4.")
                       for name in outcome.metrics)

    def test_injected_failure_keeps_sibling_results(self, monkeypatch):
        """The acceptance scenario: --parallel 2 with one raising
        experiment leaves the others' results intact."""
        from repro.experiments.parallel import run_parallel
        monkeypatch.setenv("REPRO_FAIL_EXPERIMENT", "table4")
        outcome = run_parallel(["table2", "table4"], quick=True, jobs=2,
                               retries=0)
        assert not outcome.ok
        assert outcome.results[0] is not None  # table2 survived
        assert outcome.results[1] is None
        by_key = {o.key: o for o in outcome.report.outcomes}
        assert by_key["table4"].status == "failed"
        assert "injected failure" in by_key["table4"].error

    def test_cli_exits_nonzero_with_status_table(self, monkeypatch,
                                                 capsys):
        from repro.experiments.__main__ import main
        monkeypatch.setenv("REPRO_FAIL_EXPERIMENT", "table4")
        status = main(["table2", "table4", "--quick", "--parallel", "2",
                       "--retries", "0"])
        out = capsys.readouterr().out
        assert status == 1
        assert "experiment status:" in out
        assert "table4" in out and "failed" in out
        assert "Table 2" in out  # the surviving sibling still printed

    def test_timeout_option_flows_through(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main
        monkeypatch.setenv("REPRO_HANG_EXPERIMENT", "table4")
        status = main(["table2", "table4", "--quick", "--parallel", "2",
                       "--timeout", "5", "--retries", "0"])
        out = capsys.readouterr().out
        assert status == 1
        assert "timeout" in out
