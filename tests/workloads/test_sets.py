"""Unit tests for the sorted-set workload generators."""

import pytest

from repro.core.common import SENTINEL, is_strictly_sorted
from repro.workloads.sets import (expected_result_size,
                                  generate_clustered_rid_list,
                                  generate_predicate_rid_lists,
                                  generate_rid_list, generate_set_pair,
                                  generate_zipfian_column,
                                  generate_zipfian_rid_list,
                                  zipf_weights)


class TestGenerateSetPair:
    def test_exact_selectivity(self):
        for selectivity in (0.0, 0.25, 0.5, 0.75, 1.0):
            set_a, set_b = generate_set_pair(400,
                                             selectivity=selectivity,
                                             seed=1)
            common = len(set(set_a) & set(set_b))
            assert common == round(selectivity * 400)

    def test_sizes_respected(self):
        set_a, set_b = generate_set_pair(100, 250, selectivity=0.4,
                                         seed=2)
        assert len(set_a) == 100
        assert len(set_b) == 250

    def test_strictly_sorted_and_below_sentinel(self):
        set_a, set_b = generate_set_pair(500, selectivity=0.5, seed=3)
        assert is_strictly_sorted(set_a)
        assert is_strictly_sorted(set_b)
        assert max(set_a + set_b) < SENTINEL

    def test_reproducible_with_seed(self):
        first = generate_set_pair(100, selectivity=0.5, seed=42)
        second = generate_set_pair(100, selectivity=0.5, seed=42)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_set_pair(100, selectivity=0.5, seed=1)
        second = generate_set_pair(100, selectivity=0.5, seed=2)
        assert first != second

    def test_selectivity_bounds_checked(self):
        with pytest.raises(ValueError):
            generate_set_pair(10, selectivity=1.5)
        with pytest.raises(ValueError):
            generate_set_pair(10, selectivity=-0.1)

    def test_selectivity_uses_smaller_set(self):
        set_a, set_b = generate_set_pair(100, 10, selectivity=1.0,
                                         seed=4)
        assert len(set(set_a) & set(set_b)) == 10

    def test_value_space_exhaustion_detected(self):
        with pytest.raises(ValueError, match="value space"):
            generate_set_pair(10, selectivity=0.0, max_value=5)


class TestExpectedResultSize:
    @pytest.mark.parametrize("which,expected", [
        ("intersection", 50), ("union", 150), ("difference", 50),
    ])
    def test_formulas(self, which, expected):
        assert expected_result_size(which, 100, 100, 0.5) == expected

    def test_matches_generator(self):
        set_a, set_b = generate_set_pair(200, 120, selectivity=0.3,
                                         seed=5)
        assert expected_result_size("intersection", 200, 120, 0.3) \
            == len(set(set_a) & set(set_b))
        assert expected_result_size("union", 200, 120, 0.3) \
            == len(set(set_a) | set(set_b))
        assert expected_result_size("difference", 200, 120, 0.3) \
            == len(set(set_a) - set(set_b))

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            expected_result_size("xor", 1, 1, 0.5)


class TestRidLists:
    def test_rid_list_shape(self):
        rids = generate_rid_list(100, table_rows=1000, seed=1)
        assert len(rids) == 100
        assert is_strictly_sorted(rids)
        assert all(0 <= rid < 1000 for rid in rids)

    def test_rid_list_bounds(self):
        with pytest.raises(ValueError):
            generate_rid_list(11, table_rows=10)

    def test_predicate_lists(self):
        lists = generate_predicate_rid_lists(1000, [0.1, 0.5], seed=2)
        assert len(lists) == 2
        assert len(lists[0]) == 100
        assert len(lists[1]) == 500
        for rids in lists:
            assert is_strictly_sorted(rids)


class TestZipfWeights:
    def test_theta_zero_is_uniform(self):
        assert zipf_weights(5, theta=0.0) == [1.0] * 5

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, theta=1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, theta=-1.0)


class TestZipfianColumn:
    def test_shape_and_domain(self):
        column = generate_zipfian_column(2000, cardinality=8,
                                         theta=1.0, seed=1)
        assert len(column) == 2000
        assert set(column) <= set(range(8))

    def test_skewed_toward_low_values(self):
        column = generate_zipfian_column(5000, cardinality=8,
                                         theta=1.2, seed=2)
        counts = [column.count(value) for value in range(8)]
        assert counts[0] > 3 * counts[-1]

    def test_deterministic(self):
        first = generate_zipfian_column(500, 16, theta=1.0, seed=9)
        second = generate_zipfian_column(500, 16, theta=1.0, seed=9)
        assert first == second

    def test_theta_zero_roughly_uniform(self):
        column = generate_zipfian_column(8000, cardinality=4,
                                         theta=0.0, seed=3)
        counts = [column.count(value) for value in range(4)]
        assert max(counts) < 1.25 * min(counts)


class TestZipfianRidList:
    def test_shape(self):
        rids = generate_zipfian_rid_list(200, table_rows=1000,
                                         theta=1.0, seed=1)
        assert len(rids) == 200
        assert is_strictly_sorted(rids)
        assert all(0 <= rid < 1000 for rid in rids)

    def test_skewed_toward_low_rids(self):
        rids = generate_zipfian_rid_list(200, table_rows=4000,
                                         theta=1.0, seed=2)
        low_half = sum(1 for rid in rids if rid < 2000)
        assert low_half > 0.6 * len(rids)

    def test_deterministic(self):
        first = generate_zipfian_rid_list(50, 500, theta=1.0, seed=7)
        second = generate_zipfian_rid_list(50, 500, theta=1.0, seed=7)
        assert first == second

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            generate_zipfian_rid_list(11, table_rows=10)

    def test_full_selection(self):
        rids = generate_zipfian_rid_list(10, table_rows=10, seed=1)
        assert rids == list(range(10))


class TestClusteredRidList:
    def test_shape(self):
        rids = generate_clustered_rid_list(100, table_rows=2000,
                                           clusters=3, seed=1)
        assert len(rids) == 100
        assert is_strictly_sorted(rids)
        assert all(0 <= rid < 2000 for rid in rids)

    def test_concentration(self):
        # Most selected RIDs sit inside a small fraction of the RID
        # space: the covered span of the sorted list's middle 90 %
        # stays far below the uniform expectation.
        rids = generate_clustered_rid_list(200, table_rows=20000,
                                           clusters=2, spread=0.01,
                                           seed=2)
        gaps = sorted(b - a for a, b in zip(rids, rids[1:]))
        median_gap = gaps[len(gaps) // 2]
        assert median_gap < (20000 // 200) / 2

    def test_deterministic(self):
        first = generate_clustered_rid_list(80, 1000, seed=5)
        second = generate_clustered_rid_list(80, 1000, seed=5)
        assert first == second

    def test_saturation_widens(self):
        # size far beyond cluster capacity at the initial width must
        # still terminate with exactly size distinct RIDs
        rids = generate_clustered_rid_list(900, table_rows=1000,
                                           clusters=2, spread=0.001,
                                           seed=3)
        assert len(rids) == 900

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            generate_clustered_rid_list(11, table_rows=10)
        with pytest.raises(ValueError):
            generate_clustered_rid_list(5, table_rows=10, clusters=0)
