"""Unit tests for the sorted-set workload generators."""

import pytest

from repro.core.common import SENTINEL, is_strictly_sorted
from repro.workloads.sets import (expected_result_size,
                                  generate_predicate_rid_lists,
                                  generate_rid_list, generate_set_pair)


class TestGenerateSetPair:
    def test_exact_selectivity(self):
        for selectivity in (0.0, 0.25, 0.5, 0.75, 1.0):
            set_a, set_b = generate_set_pair(400,
                                             selectivity=selectivity,
                                             seed=1)
            common = len(set(set_a) & set(set_b))
            assert common == round(selectivity * 400)

    def test_sizes_respected(self):
        set_a, set_b = generate_set_pair(100, 250, selectivity=0.4,
                                         seed=2)
        assert len(set_a) == 100
        assert len(set_b) == 250

    def test_strictly_sorted_and_below_sentinel(self):
        set_a, set_b = generate_set_pair(500, selectivity=0.5, seed=3)
        assert is_strictly_sorted(set_a)
        assert is_strictly_sorted(set_b)
        assert max(set_a + set_b) < SENTINEL

    def test_reproducible_with_seed(self):
        first = generate_set_pair(100, selectivity=0.5, seed=42)
        second = generate_set_pair(100, selectivity=0.5, seed=42)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_set_pair(100, selectivity=0.5, seed=1)
        second = generate_set_pair(100, selectivity=0.5, seed=2)
        assert first != second

    def test_selectivity_bounds_checked(self):
        with pytest.raises(ValueError):
            generate_set_pair(10, selectivity=1.5)
        with pytest.raises(ValueError):
            generate_set_pair(10, selectivity=-0.1)

    def test_selectivity_uses_smaller_set(self):
        set_a, set_b = generate_set_pair(100, 10, selectivity=1.0,
                                         seed=4)
        assert len(set(set_a) & set(set_b)) == 10

    def test_value_space_exhaustion_detected(self):
        with pytest.raises(ValueError, match="value space"):
            generate_set_pair(10, selectivity=0.0, max_value=5)


class TestExpectedResultSize:
    @pytest.mark.parametrize("which,expected", [
        ("intersection", 50), ("union", 150), ("difference", 50),
    ])
    def test_formulas(self, which, expected):
        assert expected_result_size(which, 100, 100, 0.5) == expected

    def test_matches_generator(self):
        set_a, set_b = generate_set_pair(200, 120, selectivity=0.3,
                                         seed=5)
        assert expected_result_size("intersection", 200, 120, 0.3) \
            == len(set(set_a) & set(set_b))
        assert expected_result_size("union", 200, 120, 0.3) \
            == len(set(set_a) | set(set_b))
        assert expected_result_size("difference", 200, 120, 0.3) \
            == len(set(set_a) - set(set_b))

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            expected_result_size("xor", 1, 1, 0.5)


class TestRidLists:
    def test_rid_list_shape(self):
        rids = generate_rid_list(100, table_rows=1000, seed=1)
        assert len(rids) == 100
        assert is_strictly_sorted(rids)
        assert all(0 <= rid < 1000 for rid in rids)

    def test_rid_list_bounds(self):
        with pytest.raises(ValueError):
            generate_rid_list(11, table_rows=10)

    def test_predicate_lists(self):
        lists = generate_predicate_rid_lists(1000, [0.1, 0.5], seed=2)
        assert len(lists) == 2
        assert len(lists[0]) == 100
        assert len(lists[1]) == 500
        for rids in lists:
            assert is_strictly_sorted(rids)
