"""Unit tests for the sort-input generators."""

from repro.core.common import SENTINEL
from repro.workloads.sorting import (few_distinct_values,
                                     nearly_sorted_values,
                                     presorted_values, random_values,
                                     reverse_sorted_values)


class TestGenerators:
    def test_random_values_range(self):
        values = random_values(500, seed=1)
        assert len(values) == 500
        assert all(0 <= value < SENTINEL for value in values)

    def test_random_reproducible(self):
        assert random_values(100, seed=7) == random_values(100, seed=7)

    def test_presorted(self):
        values = presorted_values(200, seed=2)
        assert values == sorted(values)

    def test_reverse_sorted(self):
        values = reverse_sorted_values(200, seed=3)
        assert values == sorted(values, reverse=True)

    def test_nearly_sorted_is_mostly_ordered(self):
        values = nearly_sorted_values(400, seed=4)
        inversions = sum(1 for a, b in zip(values, values[1:]) if a > b)
        assert 0 < inversions < 100

    def test_few_distinct(self):
        values = few_distinct_values(300, distinct=8, seed=5)
        assert len(values) == 300
        assert len(set(values)) <= 8

    def test_empty_inputs(self):
        assert random_values(0) == []
        assert presorted_values(0) == []
