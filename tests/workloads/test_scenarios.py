"""Tests for the canned workload scenarios."""

import pytest

from repro.core.kernels import run_set_operation
from repro.workloads.scenarios import (ALL_SCENARIOS, except_clause,
                                       index_anding, star_filter,
                                       union_clause)


class TestOracles:
    def test_index_anding_is_conjunction(self):
        scenario = index_anding(table_rows=2000, seed=4)
        expected = set(scenario.rid_lists[0])
        for rids in scenario.rid_lists[1:]:
            expected &= set(rids)
        assert scenario.oracle() == sorted(expected)

    def test_union_clause(self):
        scenario = union_clause(table_rows=2000, seed=5)
        expected = set()
        for rids in scenario.rid_lists:
            expected |= set(rids)
        assert scenario.oracle() == sorted(expected)

    def test_except_clause(self):
        scenario = except_clause(table_rows=2000, seed=6)
        expected = set(scenario.rid_lists[0]) - set(scenario.rid_lists[1])
        assert scenario.oracle() == sorted(expected)

    def test_star_filter_structure(self):
        scenario = star_filter(table_rows=3000, seed=7)
        p = [set(r) for r in scenario.rid_lists]
        expected = ((p[0] & p[1]) & (p[2] | p[3])) - p[4]
        assert scenario.oracle() == sorted(expected)


@pytest.mark.parametrize("factory", ALL_SCENARIOS,
                         ids=lambda f: f.__name__)
class TestAcceleratedExecution:
    def test_matches_oracle_on_eis(self, eis_2lsu_partial, factory):
        scenario = factory(table_rows=3000)

        def runner(operation, left, right):
            return run_set_operation(eis_2lsu_partial, operation, left,
                                     right, validate_input=False)

        result, cycles = scenario.execute(runner)
        assert result == scenario.oracle()
        assert cycles > 0
