"""Full-stack integration tests: paper-scale workloads end to end."""

import pytest

from repro import (run_merge_sort, run_set_operation,
                   synthesize_config)
from repro.core import run_scalar_set_operation
from repro.toolflow import equivalence_check
from repro.workloads import generate_set_pair, random_values


class TestPaperScaleWorkloads:
    """The exact workload sizes of the paper's Table 2."""

    @pytest.fixture(scope="class")
    def paper_sets(self):
        return generate_set_pair(5000, selectivity=0.5, seed=42)

    def test_intersection_at_5000(self, eis_2lsu_partial, paper_sets):
        set_a, set_b = paper_sets
        result, stats = run_set_operation(eis_2lsu_partial,
                                          "intersection", set_a, set_b)
        assert result == sorted(set(set_a) & set(set_b))
        assert len(result) == 2500  # exact selectivity
        # throughput at the synthesized frequency is within the band
        fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
        meps = stats.throughput_meps(10_000, fmax)
        assert 800 < meps < 1400  # paper: 1203

    def test_sort_at_6500(self, eis_1lsu_partial):
        values = random_values(6500, seed=42)
        result, stats = run_merge_sort(eis_1lsu_partial, values)
        assert result == sorted(values)
        fmax = synthesize_config("DBA_1LSU_EIS").fmax_mhz
        meps = stats.throughput_meps(6500, fmax)
        assert 20 < meps < 45  # paper: 29.3

    def test_speedup_band_vs_108mini(self, mini_108, eis_2lsu_partial,
                                     paper_sets):
        """The paper's headline speedup: up to 38.4x over the 108Mini
        for intersection with all features enabled."""
        set_a, set_b = paper_sets
        _r, scalar = run_scalar_set_operation(mini_108, "intersection",
                                              set_a, set_b)
        _r, eis = run_set_operation(eis_2lsu_partial, "intersection",
                                    set_a, set_b)
        scalar_meps = scalar.throughput_meps(10_000, 442)
        eis_meps = eis.throughput_meps(10_000, 410)
        speedup = eis_meps / scalar_meps
        assert 20 < speedup < 50  # paper: 38.4x


class TestBinaryLevelIntegrity:
    def test_all_kernels_pass_equivalence_check(self, eis_2lsu_partial,
                                                eis_1lsu_partial):
        from repro.core.kernels import (merge_sort_kernel,
                                        set_operation_kernel)
        for processor, lsus in ((eis_2lsu_partial, 2),
                                (eis_1lsu_partial, 1)):
            for which in ("intersection", "union", "difference"):
                program = processor.assembler.assemble(
                    set_operation_kernel(which, num_lsus=lsus))
                assert equivalence_check(processor, program) > 0
            program = processor.assembler.assemble(merge_sort_kernel())
            assert equivalence_check(processor, program) > 0

    def test_scalar_kernels_pass_equivalence_check(self, dba_1lsu):
        from repro.core.scalar_kernels import (
            difference_scalar_kernel, intersection_scalar_kernel,
            merge_sort_scalar_kernel, union_scalar_kernel)
        for source in (intersection_scalar_kernel(),
                       union_scalar_kernel(),
                       difference_scalar_kernel(),
                       merge_sort_scalar_kernel()):
            program = dba_1lsu.assembler.assemble(source)
            assert equivalence_check(dba_1lsu, program) > 0


class TestRepeatability:
    def test_same_processor_instance_is_reusable(self,
                                                 eis_2lsu_partial):
        set_a, set_b = generate_set_pair(500, selectivity=0.5, seed=1)
        first, stats1 = run_set_operation(eis_2lsu_partial,
                                          "intersection", set_a, set_b)
        second, stats2 = run_set_operation(eis_2lsu_partial,
                                           "intersection", set_a,
                                           set_b)
        assert first == second
        assert stats1.cycles == stats2.cycles  # deterministic

    def test_interleaving_operations_does_not_corrupt_state(
            self, eis_2lsu_partial):
        set_a, set_b = generate_set_pair(300, selectivity=0.4, seed=2)
        run_set_operation(eis_2lsu_partial, "union", set_a, set_b)
        values = random_values(200, seed=3)
        sorted_out, _ = run_merge_sort(eis_2lsu_partial, values)
        assert sorted_out == sorted(values)
        result, _ = run_set_operation(eis_2lsu_partial, "difference",
                                      set_a, set_b)
        assert result == sorted(set(set_a) - set(set_b))


class TestPublicApi:
    def test_top_level_exports(self):
        import repro
        assert callable(repro.build_processor)
        assert callable(repro.run_set_operation)
        assert callable(repro.synthesize_config)
        assert repro.__version__

    def test_experiment_registry_complete(self):
        from repro.experiments import EXPERIMENTS
        assert set(EXPERIMENTS) == {"table2", "table3", "table4",
                                    "table5", "table6", "figure13",
                                    "prefetch", "energy", "iso_area",
                                    "compression", "scale_out"}
