"""Last-mile coverage: profiled EIS runs, timing attribution, and
cross-layer consistency checks."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import crc32_reference
from repro.cpu import CycleProfiler
from repro.workloads.sets import generate_set_pair


class TestProfiledEisRun:
    def test_profiler_attributes_eis_loop(self, eis_2lsu_partial):
        from repro.core.kernels import (run_set_operation,
                                        set_operation_layout)
        set_a, set_b = generate_set_pair(800, selectivity=0.5, seed=1)
        run_set_operation(eis_2lsu_partial, "intersection", set_a,
                          set_b)
        base_a, base_b, base_c = set_operation_layout(
            eis_2lsu_partial, len(set_a), len(set_b))
        profiler = CycleProfiler()
        result = eis_2lsu_partial.run_profiled(
            profiler, entry="main", regs={
                "a2": base_a, "a3": base_a + len(set_a) * 4,
                "a4": base_b, "a5": base_b + len(set_b) * 4,
                "a6": base_c})
        assert profiler.total_cycles == result.cycles
        hotspots = profiler.hotspots(eis_2lsu_partial.program)
        assert hotspots[0].region == "loop"
        assert hotspots[0].share > 0.9  # the unrolled core loop is all


class TestTimingAttribution:
    def test_union_path_sets_the_eis_clock(self):
        """The union result circuit is the deepest declared op path, so
        it (plus the shared matrix) limits the EIS stage."""
        from repro.core.extension import build_db_extension
        from repro.tie.netlist import path_delay
        extension = build_db_extension(num_lsus=2)
        union_delay = path_delay(
            extension.operation("sop_uni").path)
        others = [path_delay(extension.operation(name).path)
                  for name in ("sop_int", "sop_dif", "merge_st",
                               "ldsort", "ld_a", "ldp_a", "st_s")]
        assert union_delay >= max(others)
        assert extension.netlist().longest_path_fo4() == union_delay

    def test_frequency_order_is_a_consequence(self):
        """fmax(108Mini) > fmax(DBA_1LSU) > fmax(DBA_1LSU_EIS) >
        fmax(DBA_2LSU_EIS) falls out of the path model."""
        from repro.synth import synthesize_config
        fmax = [synthesize_config(name).fmax_mhz
                for name in ("108Mini", "DBA_1LSU", "DBA_1LSU_EIS",
                             "DBA_2LSU_EIS")]
        assert fmax == sorted(fmax, reverse=True)


class TestCrcAgainstZlib:
    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    max_size=40))
    @settings(max_examples=100)
    def test_reference_matches_zlib(self, words):
        data = b"".join(word.to_bytes(4, "little") for word in words)
        assert crc32_reference(words) == zlib.crc32(data)


class TestResultStatsConsistency:
    def test_lsu_traffic_accounts_for_all_data(self, eis_2lsu_partial):
        """Every input block is loaded exactly once and every result
        block stored exactly once (no hidden re-reads)."""
        from repro.core.kernels import run_set_operation
        set_a, set_b = generate_set_pair(2048, selectivity=0.5, seed=3)
        result, stats = run_set_operation(eis_2lsu_partial,
                                          "intersection", set_a, set_b)
        blocks_a = len(set_a) // 4
        blocks_b = len(set_b) // 4
        assert stats.stats["lsu_loads"][0] == blocks_a
        assert stats.stats["lsu_loads"][1] == blocks_b
        full_result_blocks = len(result) // 4
        # the epilogue flush writes the tail with word stores
        assert stats.stats["lsu_stores"][1] >= full_result_blocks

    def test_cycles_scale_linearly_with_input(self, eis_2lsu_partial):
        from repro.core.kernels import run_set_operation
        cycles = {}
        for size in (1000, 4000):
            set_a, set_b = generate_set_pair(size, selectivity=0.5,
                                             seed=4)
            _r, stats = run_set_operation(eis_2lsu_partial,
                                          "intersection", set_a, set_b)
            cycles[size] = stats.cycles
        ratio = cycles[4000] / cycles[1000]
        assert ratio == pytest.approx(4.0, rel=0.15)
