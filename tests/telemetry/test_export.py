"""Tests for the Prometheus / JSONL metrics exporters."""

import json

from repro.telemetry.export import (JsonlExporter, prometheus_name,
                                    read_jsonl, render_prometheus,
                                    write_prometheus)
from repro.telemetry.registry import MetricsRegistry


def build_registry():
    registry = MetricsRegistry()
    registry.counter("db.engine.queries").add(12)
    registry.gauge("db.engine.queue_depth").set(3)
    latency = registry.histogram("db.engine.query_cycles")
    for value in (10, 20, 30, 40):
        latency.observe(value)
    return registry


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("db.engine.queries") \
            == "repro_db_engine_queries"

    def test_illegal_characters_sanitized(self):
        assert prometheus_name("a-b c.d") == "repro_a_b_c_d"

    def test_no_namespace_digit_prefix_guarded(self):
        assert prometheus_name("2lsu.stalls", namespace="") \
            == "_2lsu_stalls"


class TestRenderPrometheus:
    def test_counter_and_gauge_samples(self):
        text = render_prometheus(build_registry())
        assert "# TYPE repro_db_engine_queries counter" in text
        assert "repro_db_engine_queries 12" in text
        assert "# TYPE repro_db_engine_queue_depth gauge" in text
        assert "repro_db_engine_queue_depth 3" in text

    def test_histogram_becomes_summary_family(self):
        text = render_prometheus(build_registry())
        assert "# TYPE repro_db_engine_query_cycles summary" in text
        assert 'repro_db_engine_query_cycles{quantile="0.5"} 20' in text
        assert 'repro_db_engine_query_cycles{quantile="0.99"} 40' \
            in text
        assert "repro_db_engine_query_cycles_sum 100" in text
        assert "repro_db_engine_query_cycles_count 4" in text

    def test_snapshot_export_matches_kinds(self):
        # a bare snapshot shipped across a process boundary still
        # exports; numbers fall back to gauges, dicts to summaries
        snapshot = build_registry().snapshot()
        text = render_prometheus(snapshot)
        assert "# TYPE repro_db_engine_queries gauge" in text
        assert "repro_db_engine_query_cycles_count 4" in text

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(str(tmp_path / "metrics.prom"),
                                build_registry())
        content = open(path).read()
        assert content.endswith("\n")
        assert "repro_db_engine_queries 12" in content


class TestJsonlExporter:
    def test_flush_appends_lines(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        exporter = JsonlExporter(path, wall=lambda: 123.0)
        registry = build_registry()
        exporter.flush(registry, label="first")
        registry.get("db.engine.queries").add(1)
        exporter.flush(registry)
        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0]["label"] == "first"
        assert records[0]["ts"] == 123.0
        assert records[0]["metrics"]["db.engine.queries"] == 12
        assert records[1]["metrics"]["db.engine.queries"] == 13
        assert "label" not in records[1]

    def test_maybe_flush_honors_interval(self, tmp_path):
        clock = [0.0]
        exporter = JsonlExporter(str(tmp_path / "m.jsonl"),
                                 interval=10.0,
                                 clock=lambda: clock[0],
                                 wall=lambda: 0.0)
        registry = build_registry()
        assert exporter.maybe_flush(registry) is not None  # first
        clock[0] = 5.0
        assert exporter.maybe_flush(registry) is None  # too soon
        clock[0] = 10.0
        assert exporter.maybe_flush(registry) is not None
        assert exporter.flushes == 2

    def test_plain_dict_snapshot_flushes(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        JsonlExporter(path, wall=lambda: 1.0).flush({"a": 1})
        assert read_jsonl(path) == [{"ts": 1.0, "metrics": {"a": 1}}]

    def test_lines_are_valid_json(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        exporter = JsonlExporter(path)
        exporter.flush(build_registry())
        with open(path) as handle:
            for line in handle:
                json.loads(line)
