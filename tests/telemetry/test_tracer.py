"""Chrome trace-event export: builder schema and PipelineTracer wiring."""

import json

import pytest

from repro.cpu import CoreConfig, PipelineTracer, Processor
from repro.telemetry.tracer import (ChromeTraceBuilder,
                                    validate_chrome_trace,
                                    write_chrome_trace)


class TestChromeTraceBuilder:
    def test_shape(self):
        builder = ChromeTraceBuilder()
        builder.thread(0, "pipeline issue", sort_index=0)
        builder.complete(0, "addi", 10, 2, category="issue",
                         args={"pc": 3})
        builder.instant(0, "marker", 12)
        builder.counter("occupancy", 10, {"busy": 1})
        payload = builder.to_dict()
        assert isinstance(payload["traceEvents"], list)
        validate_chrome_trace(payload)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 10
        assert complete[0]["dur"] == 2
        assert complete[0]["args"] == {"pc": 3}

    def test_zero_duration_clamped(self):
        builder = ChromeTraceBuilder()
        builder.complete(0, "nop", 5, 0)
        event = [e for e in builder.events if e["ph"] == "X"][0]
        assert event["dur"] == 1

    def test_thread_metadata_idempotent(self):
        builder = ChromeTraceBuilder()
        builder.thread(1, "dma")
        builder.thread(1, "dma")
        names = [e for e in builder.events if e["name"] == "thread_name"]
        assert len(names) == 1

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                                  "ts": 0}]})  # missing dur

    def test_write_roundtrip(self, tmp_path):
        builder = ChromeTraceBuilder()
        builder.complete(0, "op", 0, 1)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), builder)
        validate_chrome_trace(json.loads(path.read_text()))


SOURCE = """
main:
  movi a2, 5
loop:
  addi a2, a2, -1
  bnez a2, loop
  halt
"""


def traced_processor(limit=200):
    processor = Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0))
    processor.load_program(SOURCE)
    tracer = PipelineTracer(limit=limit)
    processor.run(entry="main", trace=tracer)
    return processor, tracer


class TestPipelineTracerExport:
    def test_dropped_events_counted_and_rendered(self):
        _processor, tracer = traced_processor(limit=3)
        assert len(tracer.events) == 3
        assert tracer.dropped > 0
        text = tracer.render()
        assert "dropped" in text
        assert str(tracer.dropped) in text

    def test_no_drop_no_banner(self):
        _processor, tracer = traced_processor()
        assert tracer.dropped == 0
        assert "dropped" not in tracer.render()

    def test_chrome_trace_valid_and_complete(self):
        _processor, tracer = traced_processor()
        payload = tracer.to_chrome_trace()
        validate_chrome_trace(payload)
        issues = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "issue"]
        assert len(issues) == len(tracer.issue_events())
        assert issues[0]["name"] == "movi"
        assert issues[0]["args"]["pc"] == 0
        lanes = [e["args"]["name"] for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"]
        assert "pipeline issue" in lanes
        assert "dma bursts" in lanes

    def test_save_chrome_trace(self, tmp_path):
        _processor, tracer = traced_processor()
        path = tmp_path / "t.json"
        tracer.save_chrome_trace(str(path))
        validate_chrome_trace(json.loads(path.read_text()))

    def test_trace_handle_cleared_after_run(self):
        processor, _tracer = traced_processor()
        assert processor.trace is None

    def test_dma_spans_recorded(self):
        from repro.configs.catalog import build_processor
        from repro.cpu.memory import MAIN_BASE
        processor = build_processor("DBA_1LSU_EIS", prefetcher=True)
        processor.write_words(MAIN_BASE, [1, 2, 3, 4])
        source = """
        main:
          li a2, 0x80000000
          wur a2, DMA_SRC
          movi a3, 0x400
          wur a3, DMA_DST
          movi a4, 16
          wur a4, DMA_LEN
          movi a5, 1
          wur a5, DMA_CTRL
          halt
        """
        processor.load_program(source)
        tracer = PipelineTracer()
        processor.run(entry="main", trace=tracer)
        dma_events = [e for e in tracer.events if e[4] == "dma"]
        assert len(dma_events) == 1
        assert dma_events[0][3] > 0  # burst occupies the network
        payload = tracer.to_chrome_trace()
        validate_chrome_trace(payload)
        assert any(e.get("cat") == "dma" for e in payload["traceEvents"])
