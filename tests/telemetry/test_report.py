"""Run reports, RunStats compatibility, and the processor registry."""

import json

import pytest

from repro.configs.catalog import build_processor
from repro.core.kernels import run_set_operation
from repro.cpu import CacheConfig, CoreConfig, Processor
from repro.telemetry.report import RunReport, RunStats
from repro.workloads.sets import generate_set_pair


@pytest.fixture(scope="module")
def intersection_run():
    processor = build_processor("DBA_2LSU_EIS")
    set_a, set_b = generate_set_pair(400, selectivity=0.5, seed=7)
    values, result = run_set_operation(processor, "intersection",
                                       set_a, set_b)
    return processor, values, result


class TestProcessorRegistry:
    def test_namespaced_counters_present(self, intersection_run):
        processor, _values, result = intersection_run
        snap = result.stats.snapshot
        assert snap["lsu.0.loads"] == result.stats["lsu_loads"][0]
        assert snap["lsu.1.loads"] == result.stats["lsu_loads"][1]
        assert snap["cpu.run.cycles"] == result.cycles
        assert snap["cpu.run.instructions"] == result.instructions
        assert "mem.dmem0.reads" in snap
        assert "mem.main.reads" in snap

    def test_legacy_dict_access_unchanged(self, intersection_run):
        _processor, _values, result = intersection_run
        stats = result.stats
        assert isinstance(stats, dict)
        assert isinstance(stats["lsu_loads"], list)
        assert stats["lsu_loads"][0] > 0
        assert "interlock_stalls" in stats
        assert stats.metric("lsu.0.loads") == stats["lsu_loads"][0]

    def test_dcache_metrics_registered(self):
        processor = build_processor("108Mini")
        assert processor.dcache is None or \
            "cpu.dcache.hits" in processor.metrics
        cached = Processor(CoreConfig(
            "t", dmem0_kb=0, sysmem_kb=64, sysmem_wait_states=3,
            dcache=CacheConfig("dcache", 1024, 2, 16, miss_penalty=6)))
        assert "cpu.dcache.hits" in cached.metrics
        cached.load_program("""
        main:
          movi a2, 0
          l32i a3, a2, 0
          l32i a4, a2, 0
          halt
        """)
        result = cached.run(entry="main")
        assert result.stats["dcache_hits"] == 1
        assert result.stats.snapshot["cpu.dcache.hits"] == 1
        report = result.report(workload="probe", config="t")
        assert report.derived["caches"]["dcache"]["hits"] == 1
        assert 0 < report.derived["caches"]["dcache"]["hit_rate"] < 1

    def test_dma_and_noc_registered_on_attach(self):
        processor = build_processor("DBA_1LSU_EIS", prefetcher=True)
        assert "dma.descriptors" in processor.metrics
        assert "noc.bytes_moved" in processor.metrics
        assert "noc.burst_bytes" in processor.metrics

    def test_snapshot_diff_across_runs(self, intersection_run):
        processor = build_processor("DBA_1LSU_EIS")
        set_a, set_b = generate_set_pair(100, selectivity=0.5, seed=1)
        run_set_operation(processor, "union", set_a, set_b)
        before = processor.metrics.snapshot()
        _values, result = run_set_operation(processor, "union",
                                            set_a, set_b)
        delta = processor.metrics.snapshot().diff(before)
        # run() resets stats, so the delta of a repeated run is zero
        assert delta["lsu.0.loads"] == 0
        assert result.stats.snapshot["lsu.0.loads"] > 0

    def test_reset_stats_zeroes_registry_view(self):
        processor = build_processor("DBA_1LSU_EIS")
        set_a, set_b = generate_set_pair(50, selectivity=0.5, seed=2)
        run_set_operation(processor, "difference", set_a, set_b)
        processor.reset_stats()
        snap = processor.metrics.snapshot()
        assert snap["lsu.0.loads"] == 0
        assert snap["cpu.run.cycles"] == 0
        assert snap["mem.dmem0.reads"] == 0


class TestRunReport:
    def test_from_run_derived_metrics(self, intersection_run):
        _processor, values, result = intersection_run
        report = RunReport.from_run(result, workload="intersection",
                                    config="DBA_2LSU_EIS", elements=800,
                                    clock_mhz=400.0)
        assert report.cycles == result.cycles
        assert report.derived["cpi"] == pytest.approx(result.cpi())
        assert report.derived["throughput_meps"] == pytest.approx(
            result.throughput_meps(800, 400.0))
        stalls = report.derived["stalls"]
        assert len(stalls["lsu_stall_cycles"]) == 2
        assert "caches" in report.derived

    def test_json_roundtrip(self, intersection_run, tmp_path):
        _processor, _values, result = intersection_run
        report = RunReport.from_run(result, workload="intersection",
                                    config="DBA_2LSU_EIS")
        path = tmp_path / "run.json"
        report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded.cycles == report.cycles
        assert loaded.derived == report.derived
        assert loaded.metrics == report.metrics
        assert loaded.workload == "intersection"

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v9"}))
        with pytest.raises(ValueError):
            RunReport.load(str(path))

    def test_summary_renders(self, intersection_run):
        _processor, _values, result = intersection_run
        report = RunReport.from_run(result, workload="intersection",
                                    config="DBA_2LSU_EIS", elements=800,
                                    clock_mhz=400.0)
        text = report.summary()
        assert "intersection" in text
        assert "CPI" in text
        assert "lsu.0" in text

    def test_plain_dict_stats_tolerated(self):
        from repro.cpu.processor import RunResult
        result = RunResult(10, 5, [0] * 16, {"interlock_stalls": 2})
        report = RunReport.from_run(result)
        assert report.derived["cpi"] == 2.0
        assert report.derived["stalls"]["interlock_stalls"] == 2
        assert report.derived["caches"] == {}


class TestRunStats:
    def test_empty_runstats(self):
        stats = RunStats()
        assert stats == {}
        assert stats.metric("lsu.0.loads", default=7) == 7
        assert stats.namespaced() == {}
