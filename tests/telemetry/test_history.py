"""Tests for the BENCH_history.json perf trajectory and compare gate."""

import json

import pytest

from repro.telemetry.history import (BENCH_HISTORY_SCHEMA, append_entry,
                                     classify, collect_reports, compare,
                                     compare_reports_dir,
                                     entry_from_reports,
                                     extract_metrics, load_history)

SAMPLE = {
    "benchmark": "simulator",
    "cycles": 1000,
    "seconds": 0.5,
    "fast": {"sim_instructions_per_second": 40000.0},
    "derived": {"throughput_meps": 2.5, "cpi": 1.25},
    "meta": {"cycles": 999999},  # skipped subtree must not leak
}


class TestClassify:
    def test_deterministic_lower_better(self):
        assert classify("cycles") == ("lower", False)
        assert classify("sort.cycles") == ("lower", False)
        assert classify("cpi") == ("lower", False)
        assert classify("latency_us") == ("lower", False)

    def test_noisy_metrics_flagged(self):
        assert classify("seconds") == ("lower", True)
        assert classify("fast.sim_instructions_per_second") \
            == ("higher", True)
        assert classify("speedup") == ("higher", True)
        assert classify("queries_per_second") == ("higher", True)

    def test_model_throughput_is_deterministic(self):
        assert classify("throughput_meps") == ("higher", False)

    def test_unknown_names_untracked(self):
        assert classify("rows") is None
        assert classify("schema") is None


class TestExtract:
    def test_extracts_comparable_leaves_only(self):
        metrics = extract_metrics(SAMPLE)
        assert metrics == {
            "cycles": 1000,
            "seconds": 0.5,
            "fast.sim_instructions_per_second": 40000.0,
            "throughput_meps": 2.5,
            "cpi": 1.25,
        }

    def test_skipped_subtrees_do_not_leak(self):
        assert "meta.cycles" not in extract_metrics(SAMPLE)


class TestHistoryFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_history.json")
        entry = entry_from_reports({"demo": SAMPLE}, label="pr-1",
                                   timestamp=1.0)
        history = append_entry(path, entry)
        assert history["schema"] == BENCH_HISTORY_SCHEMA
        loaded = load_history(path)
        assert len(loaded["entries"]) == 1
        assert loaded["entries"][0]["label"] == "pr-1"
        assert loaded["entries"][0]["benchmarks"]["demo"]["cycles"] \
            == 1000

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError):
            load_history(str(path))

    def test_collect_reports_ignores_non_bench_files(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text(json.dumps(SAMPLE))
        (tmp_path / "notes.json").write_text("{}")
        reports = collect_reports(str(tmp_path))
        assert list(reports) == ["demo"]


class TestCompare:
    def baseline(self):
        return entry_from_reports({"demo": SAMPLE}, label="base",
                                  timestamp=0.0)

    def test_identical_run_is_ok(self):
        comparison = compare({"demo": extract_metrics(SAMPLE)},
                             self.baseline())
        assert comparison.ok
        assert all(row["status"] in ("ok",) or not row["gated"]
                   for row in comparison.rows)

    def test_cycle_regression_trips_the_gate(self):
        current = extract_metrics(SAMPLE)
        current["cycles"] = int(current["cycles"] * 1.25)  # +25%
        comparison = compare({"demo": current}, self.baseline(),
                             threshold=0.2)
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row["metric"] == "cycles"

    def test_improvement_is_not_a_regression(self):
        current = extract_metrics(SAMPLE)
        current["cycles"] = 500
        current["throughput_meps"] = 5.0
        comparison = compare({"demo": current}, self.baseline())
        assert comparison.ok
        statuses = {row["metric"]: row["status"]
                    for row in comparison.rows}
        assert statuses["cycles"] == "improved"
        assert statuses["throughput_meps"] == "improved"

    def test_noisy_regression_informational_by_default(self):
        current = extract_metrics(SAMPLE)
        current["seconds"] = current["seconds"] * 2  # wall-clock noise
        comparison = compare({"demo": current}, self.baseline())
        assert comparison.ok
        statuses = {row["metric"]: row["status"]
                    for row in comparison.rows}
        assert statuses["seconds"] == "noisy-regression"

    def test_include_noisy_gates_wall_clock(self):
        current = extract_metrics(SAMPLE)
        current["seconds"] = current["seconds"] * 2
        comparison = compare({"demo": current}, self.baseline(),
                             include_noisy=True)
        assert not comparison.ok

    def test_new_and_missing_never_gate(self):
        comparison = compare({"other": {"cycles": 1}}, self.baseline())
        assert comparison.ok
        statuses = {row["benchmark"]: row["status"]
                    for row in comparison.rows}
        assert statuses["demo"] == "missing"
        assert statuses["other"] == "new"

    def test_format_and_to_dict(self):
        comparison = compare({"demo": extract_metrics(SAMPLE)},
                             self.baseline())
        text = comparison.format()
        assert "bench compare vs 'base'" in text
        assert "result: ok" in text
        payload = comparison.to_dict()
        assert payload["ok"] is True
        assert payload["baseline"] == "base"


class TestCompareReportsDir:
    def test_end_to_end_gate(self, tmp_path):
        reports = tmp_path / "reports"
        reports.mkdir()
        (reports / "BENCH_demo.json").write_text(json.dumps(SAMPLE))
        history = str(tmp_path / "BENCH_history.json")
        append_entry(history, entry_from_reports(
            collect_reports(str(reports)), label="seed", timestamp=0.0))

        comparison = compare_reports_dir(str(reports), history)
        assert comparison.ok

        regressed = dict(SAMPLE, cycles=int(SAMPLE["cycles"] * 1.25))
        (reports / "BENCH_demo.json").write_text(json.dumps(regressed))
        comparison = compare_reports_dir(str(reports), history)
        assert not comparison.ok

    def test_empty_history_fails_loudly(self, tmp_path):
        reports = tmp_path / "reports"
        reports.mkdir()
        with pytest.raises(FileNotFoundError):
            compare_reports_dir(str(reports),
                                str(tmp_path / "none.json"))
