"""Unit tests for the metrics registry."""

import pytest

from repro.telemetry.registry import (BoundCounter, Counter, Gauge,
                                      Histogram, MetricsRegistry)


class TestInstruments:
    def test_bound_counter_views_owner_attribute(self):
        class Component:
            def __init__(self):
                self.loads = 0

        component = Component()
        bound = BoundCounter(component, "loads")
        component.loads += 5
        assert bound.read() == 5
        assert bound.value == 5
        bound.reset()
        assert component.loads == 0

    def test_bound_counter_in_registry(self):
        class Component:
            def __init__(self):
                self.hits = 0

        component = Component()
        registry = MetricsRegistry()
        registry.register("cache.hits", BoundCounter(component, "hits"))
        component.hits += 2
        assert registry.snapshot()["cache.hits"] == 2
        registry.reset()
        assert component.hits == 0

    def test_counter(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        counter.value += 2
        assert counter.read() == 7
        counter.reset()
        assert counter.read() == 0

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(42)
        assert gauge.read() == 42
        gauge.reset()
        assert gauge.read() == 0

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (4, 16, 10):
            histogram.observe(value)
        summary = histogram.read()
        assert summary["count"] == 3
        assert summary["total"] == 30
        assert summary["min"] == 4
        assert summary["max"] == 16
        assert summary["mean"] == pytest.approx(10.0)
        histogram.reset()
        assert histogram.read()["count"] == 0


class TestRegistry:
    def test_register_and_lookup(self):
        registry = MetricsRegistry()
        counter = registry.counter("cpu.dcache.hits")
        assert registry.get("cpu.dcache.hits") is counter
        assert "cpu.dcache.hits" in registry
        assert counter.name == "cpu.dcache.hits"

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("lsu.0.loads")
        with pytest.raises(ValueError):
            registry.counter("lsu.0.loads")

    def test_adopt_existing_instrument(self):
        registry = MetricsRegistry()
        counter = Counter()
        registry.register("dma.descriptors", counter)
        counter.value += 3
        assert registry.snapshot()["dma.descriptors"] == 3

    def test_names_prefix_scoping(self):
        registry = MetricsRegistry()
        for name in ("lsu.0.loads", "lsu.0.stores", "lsu.1.loads",
                     "cpu.run.cycles"):
            registry.counter(name)
        assert registry.names("lsu.0") == ["lsu.0.loads", "lsu.0.stores"]
        # prefix matching is dot-scoped, not substring
        assert registry.names("lsu") == ["lsu.0.loads", "lsu.0.stores",
                                         "lsu.1.loads"]

    def test_scope_facade(self):
        registry = MetricsRegistry()
        scope = registry.scope("cpu").scope("dcache")
        hits = scope.counter("hits")
        hits.add(5)
        assert registry.snapshot()["cpu.dcache.hits"] == 5
        scope.reset()
        assert registry.snapshot()["cpu.dcache.hits"] == 0


class TestSnapshot:
    def build(self):
        registry = MetricsRegistry()
        loads = registry.counter("lsu.0.loads")
        cycles = registry.gauge("cpu.run.cycles")
        burst = registry.histogram("noc.burst_bytes")
        loads.add(10)
        cycles.set(100)
        burst.observe(64)
        return registry

    def test_snapshot_reset_roundtrip(self):
        registry = self.build()
        snap = registry.snapshot()
        assert snap["lsu.0.loads"] == 10
        assert snap["cpu.run.cycles"] == 100
        assert snap["noc.burst_bytes"]["count"] == 1
        registry.reset()
        fresh = registry.snapshot()
        assert fresh["lsu.0.loads"] == 0
        assert fresh["cpu.run.cycles"] == 0
        assert fresh["noc.burst_bytes"]["count"] == 0
        # snapshots are detached from later mutation
        assert snap["lsu.0.loads"] == 10

    def test_diff(self):
        registry = self.build()
        before = registry.snapshot()
        registry.get("lsu.0.loads").add(5)
        registry.get("noc.burst_bytes").observe(128)
        delta = registry.snapshot().diff(before)
        assert delta["lsu.0.loads"] == 5
        assert delta["cpu.run.cycles"] == 0
        assert delta["noc.burst_bytes"]["count"] == 1
        assert delta["noc.burst_bytes"]["total"] == 128

    def test_filter_and_tree(self):
        snap = self.build().snapshot()
        lsu_only = snap.filter("lsu.0")
        assert list(lsu_only) == ["lsu.0.loads"]
        tree = snap.as_tree()
        assert tree["lsu"]["0"]["loads"] == 10
        assert tree["cpu"]["run"]["cycles"] == 100

    def test_format(self):
        text = self.build().snapshot().format()
        assert "lsu.0.loads" in text
        assert "noc.burst_bytes" in text


class TestQuantiles:
    def test_exact_below_reservoir(self):
        histogram = Histogram("h")
        for value in range(1, 101):  # 1..100, well under RESERVOIR
            histogram.observe(value)
        summary = histogram.read()
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99

    def test_order_independent_below_reservoir(self):
        values = list(range(1, 201))
        forward = Histogram("f")
        backward = Histogram("b")
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.read()["p50"] == backward.read()["p50"]
        assert forward.read()["p99"] == backward.read()["p99"]

    def test_single_observation(self):
        histogram = Histogram("h")
        histogram.observe(7)
        summary = histogram.read()
        assert summary["p50"] == 7
        assert summary["p95"] == 7
        assert summary["p99"] == 7

    def test_empty_histogram_has_no_quantiles(self):
        summary = Histogram("h").read()
        assert summary["p50"] is None
        assert summary["p99"] is None
        assert Histogram("h").quantile(0.5) is None

    def test_reservoir_sampling_is_deterministic(self):
        first = Histogram("a")
        second = Histogram("b")
        for value in range(5000):  # spills the reservoir
            first.observe(value)
            second.observe(value)
        assert first.read() == second.read()
        assert first.read()["count"] == 5000
        # the estimate lands in a sane neighborhood of the true median
        assert 1500 < first.read()["p50"] < 3500

    def test_reset_reseeds_the_reservoir(self):
        histogram = Histogram("h")
        for value in range(5000):
            histogram.observe(value)
        before = histogram.read()
        histogram.reset()
        assert histogram.read()["count"] == 0
        for value in range(5000):
            histogram.observe(value)
        assert histogram.read() == before


class TestMergeValues:
    def test_merge_counters_and_histogram_dicts(self):
        registry = MetricsRegistry()
        registry.merge_values({"queries": 4, "latency": {"count": 2}})
        registry.merge_values({"queries": 3})
        snap = registry.snapshot()
        assert snap["queries"] == 7
        assert snap["latency"] == {"count": 2}

    def test_merge_with_prefix_namespaces(self):
        registry = MetricsRegistry()
        registry.merge_values({"scan.hits": 2}, prefix="worker.0")
        registry.merge_values({"scan.hits": 5}, prefix="worker.1")
        snap = registry.snapshot()
        assert snap["worker.0.scan.hits"] == 2
        assert snap["worker.1.scan.hits"] == 5

    def test_ensure_reuses_existing_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        assert registry.ensure("n") is counter
        gauge = registry.ensure("g", "gauge")
        assert registry.ensure("g", "gauge") is gauge
