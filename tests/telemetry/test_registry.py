"""Unit tests for the metrics registry."""

import pytest

from repro.telemetry.registry import (BoundCounter, Counter, Gauge,
                                      Histogram, MetricsRegistry)


class TestInstruments:
    def test_bound_counter_views_owner_attribute(self):
        class Component:
            def __init__(self):
                self.loads = 0

        component = Component()
        bound = BoundCounter(component, "loads")
        component.loads += 5
        assert bound.read() == 5
        assert bound.value == 5
        bound.reset()
        assert component.loads == 0

    def test_bound_counter_in_registry(self):
        class Component:
            def __init__(self):
                self.hits = 0

        component = Component()
        registry = MetricsRegistry()
        registry.register("cache.hits", BoundCounter(component, "hits"))
        component.hits += 2
        assert registry.snapshot()["cache.hits"] == 2
        registry.reset()
        assert component.hits == 0

    def test_counter(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        counter.value += 2
        assert counter.read() == 7
        counter.reset()
        assert counter.read() == 0

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(42)
        assert gauge.read() == 42
        gauge.reset()
        assert gauge.read() == 0

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (4, 16, 10):
            histogram.observe(value)
        summary = histogram.read()
        assert summary["count"] == 3
        assert summary["total"] == 30
        assert summary["min"] == 4
        assert summary["max"] == 16
        assert summary["mean"] == pytest.approx(10.0)
        histogram.reset()
        assert histogram.read()["count"] == 0


class TestRegistry:
    def test_register_and_lookup(self):
        registry = MetricsRegistry()
        counter = registry.counter("cpu.dcache.hits")
        assert registry.get("cpu.dcache.hits") is counter
        assert "cpu.dcache.hits" in registry
        assert counter.name == "cpu.dcache.hits"

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("lsu.0.loads")
        with pytest.raises(ValueError):
            registry.counter("lsu.0.loads")

    def test_adopt_existing_instrument(self):
        registry = MetricsRegistry()
        counter = Counter()
        registry.register("dma.descriptors", counter)
        counter.value += 3
        assert registry.snapshot()["dma.descriptors"] == 3

    def test_names_prefix_scoping(self):
        registry = MetricsRegistry()
        for name in ("lsu.0.loads", "lsu.0.stores", "lsu.1.loads",
                     "cpu.run.cycles"):
            registry.counter(name)
        assert registry.names("lsu.0") == ["lsu.0.loads", "lsu.0.stores"]
        # prefix matching is dot-scoped, not substring
        assert registry.names("lsu") == ["lsu.0.loads", "lsu.0.stores",
                                         "lsu.1.loads"]

    def test_scope_facade(self):
        registry = MetricsRegistry()
        scope = registry.scope("cpu").scope("dcache")
        hits = scope.counter("hits")
        hits.add(5)
        assert registry.snapshot()["cpu.dcache.hits"] == 5
        scope.reset()
        assert registry.snapshot()["cpu.dcache.hits"] == 0


class TestSnapshot:
    def build(self):
        registry = MetricsRegistry()
        loads = registry.counter("lsu.0.loads")
        cycles = registry.gauge("cpu.run.cycles")
        burst = registry.histogram("noc.burst_bytes")
        loads.add(10)
        cycles.set(100)
        burst.observe(64)
        return registry

    def test_snapshot_reset_roundtrip(self):
        registry = self.build()
        snap = registry.snapshot()
        assert snap["lsu.0.loads"] == 10
        assert snap["cpu.run.cycles"] == 100
        assert snap["noc.burst_bytes"]["count"] == 1
        registry.reset()
        fresh = registry.snapshot()
        assert fresh["lsu.0.loads"] == 0
        assert fresh["cpu.run.cycles"] == 0
        assert fresh["noc.burst_bytes"]["count"] == 0
        # snapshots are detached from later mutation
        assert snap["lsu.0.loads"] == 10

    def test_diff(self):
        registry = self.build()
        before = registry.snapshot()
        registry.get("lsu.0.loads").add(5)
        registry.get("noc.burst_bytes").observe(128)
        delta = registry.snapshot().diff(before)
        assert delta["lsu.0.loads"] == 5
        assert delta["cpu.run.cycles"] == 0
        assert delta["noc.burst_bytes"]["count"] == 1
        assert delta["noc.burst_bytes"]["total"] == 128

    def test_filter_and_tree(self):
        snap = self.build().snapshot()
        lsu_only = snap.filter("lsu.0")
        assert list(lsu_only) == ["lsu.0.loads"]
        tree = snap.as_tree()
        assert tree["lsu"]["0"]["loads"] == 10
        assert tree["cpu"]["run"]["cycles"] == 100

    def test_format(self):
        text = self.build().snapshot().format()
        assert "lsu.0.loads" in text
        assert "noc.burst_bytes" in text
