"""Synthesis model tests against the paper's Tables 3 and 4."""

import pytest

from repro.experiments.table3 import PAPER_TABLE3
from repro.experiments.table4 import PAPER_TABLE4
from repro.synth import GF_28NM_SLP, synthesize_config


@pytest.fixture(scope="module")
def reports():
    names = ("108Mini", "DBA_1LSU", "DBA_2LSU", "DBA_1LSU_EIS",
             "DBA_2LSU_EIS")
    return {name: synthesize_config(name) for name in names}


class TestTable3Calibration:
    @pytest.mark.parametrize("name", ["108Mini", "DBA_1LSU", "DBA_2LSU",
                                      "DBA_1LSU_EIS", "DBA_2LSU_EIS"])
    def test_logic_area_within_five_percent(self, reports, name):
        paper_logic = PAPER_TABLE3[("65nm", name)][0]
        assert reports[name].logic_mm2 \
            == pytest.approx(paper_logic, rel=0.05)

    @pytest.mark.parametrize("name", ["DBA_1LSU", "DBA_2LSU",
                                      "DBA_1LSU_EIS", "DBA_2LSU_EIS"])
    def test_memory_area_within_two_percent(self, reports, name):
        paper_memory = PAPER_TABLE3[("65nm", name)][1]
        assert reports[name].memory_mm2 \
            == pytest.approx(paper_memory, rel=0.02)

    def test_108mini_has_no_local_memory(self, reports):
        assert reports["108Mini"].memory_mm2 == 0.0

    @pytest.mark.parametrize("name", ["108Mini", "DBA_1LSU", "DBA_2LSU",
                                      "DBA_1LSU_EIS", "DBA_2LSU_EIS"])
    def test_fmax_within_two_percent(self, reports, name):
        paper_fmax = PAPER_TABLE3[("65nm", name)][2]
        assert reports[name].fmax_mhz \
            == pytest.approx(paper_fmax, rel=0.02)

    @pytest.mark.parametrize("name", ["108Mini", "DBA_1LSU", "DBA_2LSU",
                                      "DBA_1LSU_EIS", "DBA_2LSU_EIS"])
    def test_power_within_ten_percent(self, reports, name):
        paper_power = PAPER_TABLE3[("65nm", name)][3]
        assert reports[name].power_mw \
            == pytest.approx(paper_power, rel=0.10)

    def test_frequency_ordering_matches_paper(self, reports):
        ordered = ["108Mini", "DBA_1LSU", "DBA_2LSU", "DBA_1LSU_EIS",
                   "DBA_2LSU_EIS"]
        fmax = [reports[name].fmax_mhz for name in ordered]
        assert fmax == sorted(fmax, reverse=True)


class Test28nmShrink:
    @pytest.fixture(scope="class")
    def report28(self):
        return synthesize_config("DBA_2LSU_EIS", technology=GF_28NM_SLP)

    def test_area_shrink_factor(self, reports, report28):
        shrink = reports["DBA_2LSU_EIS"].logic_mm2 / report28.logic_mm2
        assert shrink == pytest.approx(3.8, rel=0.03)

    def test_power_shrink_factor(self, reports, report28):
        shrink = reports["DBA_2LSU_EIS"].power_mw / report28.power_mw
        assert shrink == pytest.approx(2.9, rel=0.05)

    def test_frequency_capped_by_low_voltage_library(self, report28):
        assert report28.fmax_mhz == 500.0

    def test_28nm_memory_area(self, report28):
        paper_memory = PAPER_TABLE3[("28nm", "DBA_2LSU_EIS")][1]
        assert report28.memory_mm2 \
            == pytest.approx(paper_memory, rel=0.02)


class TestTable4Breakdown:
    def test_every_share_within_one_point(self, reports):
        breakdown = reports["DBA_2LSU_EIS"].breakdown()
        for group, paper_percent in PAPER_TABLE4.items():
            measured = breakdown.get(group, 0.0) * 100
            assert measured == pytest.approx(paper_percent, abs=1.0), \
                group

    def test_union_is_largest_op(self, reports):
        breakdown = reports["DBA_2LSU_EIS"].breakdown()
        ops = {g: s for g, s in breakdown.items()
               if g.startswith("op:")}
        assert max(ops, key=ops.get) == "op:union"

    def test_merge_sort_is_smallest_op(self, reports):
        breakdown = reports["DBA_2LSU_EIS"].breakdown()
        ops = {g: s for g, s in breakdown.items()
               if g.startswith("op:")}
        assert min(ops, key=ops.get) == "op:merge_sort"

    def test_shares_sum_to_one(self, reports):
        breakdown = reports["DBA_2LSU_EIS"].breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestRelativeClaims:
    def test_eis_adds_only_logic_area(self, reports):
        assert reports["DBA_2LSU_EIS"].memory_mm2 \
            == pytest.approx(reports["DBA_2LSU"].memory_mm2)
        assert reports["DBA_2LSU_EIS"].logic_mm2 \
            > reports["DBA_2LSU"].logic_mm2

    def test_second_lsu_adds_little_base_area(self, reports):
        delta = reports["DBA_2LSU"].logic_mm2 \
            - reports["DBA_1LSU"].logic_mm2
        assert delta < 0.01

    def test_dba_total_area_about_500x_below_xeon(self, reports):
        # paper: the 108Mini is ~500x smaller than an Intel Xeon 3040
        xeon_mm2 = 111.0
        ratio = xeon_mm2 / reports["108Mini"].total_mm2
        assert 450 < ratio < 550

    def test_dba_2lsu_eis_73x_smaller_than_xeon(self, reports):
        xeon_mm2 = 111.0
        ratio = xeon_mm2 / reports["DBA_2LSU_EIS"].total_mm2
        assert 65 < ratio < 80

    def test_power_at_reduced_frequency_scales_down(self, reports):
        report = reports["DBA_2LSU_EIS"]
        half = report.power_at(report.fmax_mhz / 2)
        assert half < report.power_mw
        assert half > report.power_mw / 2  # leakage floor remains
