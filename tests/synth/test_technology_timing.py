"""Unit tests for technology tables, timing and power models."""

import pytest

from repro.configs.catalog import core_config
from repro.core.extension import build_db_extension
from repro.synth.area import base_core_netlist, memory_area_mm2
from repro.synth.power import energy_per_element_nj, power_mw
from repro.synth.technology import GF_28NM_SLP, TECHNOLOGIES, TSMC_65NM_LP
from repro.synth.timing import (base_stage_fo4, critical_path_fo4,
                                extension_stage_fo4, max_frequency_mhz)


class TestTechnology:
    def test_registry(self):
        assert TSMC_65NM_LP.name in TECHNOLOGIES
        assert GF_28NM_SLP.name in TECHNOLOGIES

    def test_ge_to_mm2(self):
        assert TSMC_65NM_LP.ge_to_mm2(1_000_000) \
            == pytest.approx(1.44, rel=1e-6)

    def test_path_to_mhz(self):
        # 100 FO4 x 25 ps = 2.5 ns -> 400 MHz
        assert TSMC_65NM_LP.path_to_mhz(100) == pytest.approx(400.0)

    def test_path_to_mhz_respects_library_cap(self):
        assert GF_28NM_SLP.path_to_mhz(10) == GF_28NM_SLP.max_freq_mhz

    def test_28nm_gates_denser(self):
        assert GF_28NM_SLP.gate_area_um2 < TSMC_65NM_LP.gate_area_um2
        assert GF_28NM_SLP.sram_mm2_per_kb < TSMC_65NM_LP.sram_mm2_per_kb


class TestTiming:
    def test_wide_bus_and_second_lsu_lengthen_base_stage(self):
        mini = core_config("108Mini")
        one = core_config("DBA_1LSU")
        two = core_config("DBA_2LSU")
        assert base_stage_fo4(mini) < base_stage_fo4(one) \
            < base_stage_fo4(two)

    def test_extension_stage_dominates_on_eis(self):
        config = core_config("DBA_2LSU_EIS")
        netlist = build_db_extension(num_lsus=2).netlist()
        assert extension_stage_fo4(config, netlist) \
            > base_stage_fo4(config)

    def test_critical_path_without_extension_is_base(self):
        config = core_config("DBA_1LSU")
        assert critical_path_fo4(config) == base_stage_fo4(config)

    def test_max_frequency_decreases_with_extension(self):
        config = core_config("DBA_2LSU_EIS")
        netlist = build_db_extension(num_lsus=2).netlist()
        with_ext = max_frequency_mhz(config, TSMC_65NM_LP, [netlist])
        without = max_frequency_mhz(core_config("DBA_2LSU"),
                                    TSMC_65NM_LP)
        assert with_ext < without


class TestAreaHelpers:
    def test_108mini_includes_divider_and_dsp(self):
        mini = base_core_netlist(core_config("108Mini"))
        dba = base_core_netlist(core_config("DBA_1LSU"))
        assert mini.groups["basic_core"] > dba.groups["basic_core"]

    def test_memory_area_uses_architectural_sizes(self):
        config = core_config("DBA_1LSU")
        area = memory_area_mm2(config, TSMC_65NM_LP)
        assert area == pytest.approx(
            (32 + 64) * TSMC_65NM_LP.sram_mm2_per_kb)

    def test_sim_headroom_not_synthesized(self):
        config = core_config("DBA_1LSU")
        config.sim_headroom_kb = 10_000
        assert memory_area_mm2(config, TSMC_65NM_LP) \
            == pytest.approx((32 + 64) * TSMC_65NM_LP.sram_mm2_per_kb)


class TestPower:
    def test_extension_activity_weighting(self):
        base_only = power_mw(TSMC_65NM_LP, 0.2, 0.0, 0, 400)
        with_ext = power_mw(TSMC_65NM_LP, 0.0, 0.2, 0, 400)
        assert with_ext > base_only  # same area, higher activity

    def test_power_scales_with_frequency(self):
        slow = power_mw(TSMC_65NM_LP, 0.2, 0.1, 96, 200)
        fast = power_mw(TSMC_65NM_LP, 0.2, 0.1, 96, 400)
        assert fast > slow

    def test_memory_contributes(self):
        without = power_mw(TSMC_65NM_LP, 0.2, 0.0, 0, 400)
        with_mem = power_mw(TSMC_65NM_LP, 0.2, 0.0, 96, 400)
        assert with_mem > without

    def test_energy_per_element(self):
        assert energy_per_element_nj(100.0, 50.0) == pytest.approx(2.0)
        assert energy_per_element_nj(100.0, 0.0) == float("inf")
