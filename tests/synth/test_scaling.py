"""Tests for the many-core iso-area scaling model (E9)."""

import pytest

from repro.baselines.x86 import Q9550
from repro.synth import ManyCoreModel, synthesize_config


@pytest.fixture(scope="module")
def report():
    return synthesize_config("DBA_2LSU_EIS")


class TestManyCoreModel:
    def test_core_count_scales_with_die(self, report):
        model = ManyCoreModel(report)
        small = model.cores_in_area(10.0)
        large = model.cores_in_area(100.0)
        assert large > small > 0

    def test_uncore_share_reduces_cores(self, report):
        optimistic = ManyCoreModel(report, uncore_share=0.1)
        pessimistic = ManyCoreModel(report, uncore_share=0.5)
        assert pessimistic.cores_in_area(200.0) \
            < optimistic.cores_in_area(200.0)

    def test_paper_order_of_magnitude_claim(self, report):
        """Even pessimistically, >10x the Q9550's four cores fit."""
        model = ManyCoreModel(report, uncore_share=0.5)
        cores = model.cores_in_area(Q9550.die_mm2)
        assert cores > 40  # paper: "an order of magnitude more cores"

    def test_aggregate_quantities(self, report):
        model = ManyCoreModel(report, uncore_share=0.25,
                              parallel_efficiency=0.8)
        assert model.aggregate_throughput_meps(10.0, 10) \
            == pytest.approx(80.0)
        assert model.aggregate_power_w(10) \
            == pytest.approx(report.power_mw / 100.0)
        energy = model.energy_per_element_nj(10.0, 10)
        assert energy > 0
        assert model.energy_per_element_nj(10.0, 0) == float("inf")

    def test_power_stays_below_x86_tdp(self, report):
        """The thermal headroom argument: a full die of database cores
        still burns far less than the x86's TDP."""
        model = ManyCoreModel(report, uncore_share=0.25)
        cores = model.cores_in_area(Q9550.die_mm2)
        assert model.aggregate_power_w(cores) < 0.25 * Q9550.tdp_w

    def test_parameter_validation(self, report):
        with pytest.raises(ValueError):
            ManyCoreModel(report, uncore_share=1.0)
        with pytest.raises(ValueError):
            ManyCoreModel(report, parallel_efficiency=0.0)

    def test_iso_area_summary_keys(self, report):
        summary = ManyCoreModel(report).iso_area_summary(100.0, 50.0)
        assert set(summary) == {"cores", "throughput_meps", "power_w",
                                "energy_nj_per_element"}


class TestExperimentE9:
    def test_runs_and_beats_single_thread(self):
        from repro.experiments import iso_area
        result = iso_area.run(sort_size=512, set_size=500)
        assert len(result.rows) == 4
        for row in result.rows:
            aggregate = row[3]
            single_thread = row[4]
            assert aggregate > single_thread  # many cores win
