"""Shared fixtures.

Heavy processor instances are session-scoped: kernels reinitialize all
datapath state (INIT_STATES / register protocol), so reuse across tests
is safe and cuts suite runtime substantially.
"""

import pytest

from repro.configs.catalog import build_processor
from repro.cpu import CoreConfig, Processor


@pytest.fixture(scope="session")
def eis_2lsu_partial():
    return build_processor("DBA_2LSU_EIS", partial_load=True)


@pytest.fixture(scope="session")
def eis_2lsu_nopartial():
    return build_processor("DBA_2LSU_EIS", partial_load=False)


@pytest.fixture(scope="session")
def eis_1lsu_partial():
    return build_processor("DBA_1LSU_EIS", partial_load=True)


@pytest.fixture(scope="session")
def eis_1lsu_nopartial():
    return build_processor("DBA_1LSU_EIS", partial_load=False)


@pytest.fixture(scope="session")
def mini_108():
    return build_processor("108Mini")


@pytest.fixture(scope="session")
def dba_1lsu():
    return build_processor("DBA_1LSU")


@pytest.fixture(scope="session")
def all_eis_processors(eis_2lsu_partial, eis_2lsu_nopartial,
                       eis_1lsu_partial, eis_1lsu_nopartial):
    return {
        ("DBA_2LSU_EIS", True): eis_2lsu_partial,
        ("DBA_2LSU_EIS", False): eis_2lsu_nopartial,
        ("DBA_1LSU_EIS", True): eis_1lsu_partial,
        ("DBA_1LSU_EIS", False): eis_1lsu_nopartial,
    }


@pytest.fixture()
def plain_processor():
    """A small fresh processor without extensions (fast to build)."""
    return Processor(CoreConfig("test", dmem0_kb=16, sim_headroom_kb=0))
