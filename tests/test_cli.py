"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "intersection"])
        assert args.config == "DBA_2LSU_EIS"
        assert args.size == 5000

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sort", "--config",
                                       "PENTIUM"])


class TestCommands:
    def test_run_set_operation(self, capsys):
        assert main(["run", "intersection", "--size", "500"]) == 0
        out = capsys.readouterr().out
        assert "Melem/s" in out
        assert "DBA_2LSU_EIS" in out

    def test_run_sort_scalar_config(self, capsys):
        assert main(["run", "sort", "--size", "200", "--config",
                     "DBA_1LSU"]) == 0
        out = capsys.readouterr().out
        assert "sorted 200 values" in out

    def test_run_without_partial_load(self, capsys):
        assert main(["run", "union", "--size", "300",
                     "--no-partial-load"]) == 0
        assert "union" in capsys.readouterr().out

    def test_synth(self, capsys):
        assert main(["synth", "--config", "108Mini"]) == 0
        out = capsys.readouterr().out
        assert "logic" in out and "fmax" in out

    def test_synth_breakdown_28nm(self, capsys):
        assert main(["synth", "--config", "DBA_2LSU_EIS", "--tech",
                     "gf28slp", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "op:union" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "difference", "--unroll", "1"]) == 0
        out = capsys.readouterr().out
        assert "store_sop_dif" in out
        assert "ld_ldp_shuffle" in out

    def test_disasm_sort(self, capsys):
        assert main(["disasm", "sort", "--unroll", "1"]) == 0
        out = capsys.readouterr().out
        assert "merge_st" in out

    def test_run_json_report(self, capsys):
        assert main(["run", "intersection", "--size", "500",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.run-report/v1"
        assert report["cycles"] > 0
        assert report["derived"]["cpi"] > 0
        assert len(report["derived"]["stalls"]["lsu_stall_cycles"]) == 2
        assert "caches" in report["derived"]
        assert report["metrics"]["lsu.0.loads"] > 0

    def test_run_trace_out(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main(["run", "intersection", "--size", "200",
                     "--trace-out", str(trace_path)]) == 0
        assert "trace:" in capsys.readouterr().out
        from repro.telemetry.tracer import validate_chrome_trace
        payload = json.loads(trace_path.read_text())
        validate_chrome_trace(payload)
        assert any(event.get("ph") == "X"
                   for event in payload["traceEvents"])

    def test_run_report_out_then_report(self, capsys, tmp_path):
        report_path = tmp_path / "r.json"
        assert main(["run", "sort", "--size", "200",
                     "--report-out", str(report_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out
        assert "sort" in out

    def test_report_rejects_bad_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"other/v1\"}")
        assert main(["report", str(bad)]) == 1

    def test_experiments_artifacts(self, capsys, tmp_path):
        assert main(["experiments", "table4", "--artifacts",
                     str(tmp_path)]) == 0
        assert "artifact:" in capsys.readouterr().out
        artifact = tmp_path / "table_4.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.experiment/v1"
        assert payload["rows"]

    def test_experiments_dispatch(self, capsys):
        assert main(["experiments", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_faults_campaign_text_summary(self, capsys):
        assert main(["faults", "campaign", "--kernel", "scalar",
                     "--trials", "4", "--size", "100"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign: scalar on DBA_1LSU" in out
        assert "masked" in out and "detected" in out

    def test_faults_campaign_json_report(self, capsys, tmp_path):
        path = tmp_path / "campaign.json"
        assert main(["faults", "campaign", "--kernel", "scalar",
                     "--trials", "3", "--size", "100", "--json",
                     "--out", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaign"]["trials"] == 3
        assert sum(report["summary"].values()) == 3
        assert json.loads(path.read_text()) == report

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])


class TestObservabilityCommands:
    def test_run_query_workers_trace_out(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["run", "query", "--size", "200", "--workers", "2",
                     "--trace-out", str(trace_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["meta"]["workers"] == 2
        assert report["meta"]["trace"]["processes"] == 3
        from repro.telemetry.tracer import validate_chrome_trace
        trace = json.loads(trace_path.read_text())
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        worker_pids = {e["pid"] for e in spans if e["pid"] >= 2}
        assert len(worker_pids) >= 2
        for pid in worker_pids:
            assert {e["tid"] for e in spans if e["pid"] == pid} \
                == {0, 1}

    def test_db_top_frames(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(["db", "top", "--rows", "120", "--queries", "6",
                     "--frames", "2", "--interval", "0", "--no-clear",
                     "--metrics-out", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "repro db top — frame 2" in out
        assert "queries served" in out
        assert "p50" in out
        from repro.telemetry.export import read_jsonl
        records = read_jsonl(str(metrics_path))
        assert len(records) == 2
        assert records[1]["metrics"]["db.engine.batches"] == 2

    def test_bench_record_then_compare_gate(self, capsys, tmp_path):
        reports = tmp_path / "reports"
        reports.mkdir()
        sample = {"benchmark": "demo", "cycles": 1000,
                  "derived": {"throughput_meps": 2.0}}
        (reports / "BENCH_demo.json").write_text(json.dumps(sample))
        history = tmp_path / "BENCH_history.json"

        assert main(["bench", "record", "--reports", str(reports),
                     "--history", str(history), "--label", "seed"]) == 0
        assert "recorded 1 benchmarks" in capsys.readouterr().out

        assert main(["bench", "compare", "--reports", str(reports),
                     "--history", str(history)]) == 0
        assert "result: ok" in capsys.readouterr().out

        regressed = dict(sample, cycles=1250)  # +25% > 20% threshold
        (reports / "BENCH_demo.json").write_text(json.dumps(regressed))
        assert main(["bench", "compare", "--reports", str(reports),
                     "--history", str(history)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_compare_json_output(self, capsys, tmp_path):
        reports = tmp_path / "reports"
        reports.mkdir()
        (reports / "BENCH_demo.json").write_text(
            json.dumps({"cycles": 10}))
        history = tmp_path / "history.json"
        assert main(["bench", "record", "--reports", str(reports),
                     "--history", str(history)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", "--reports", str(reports),
                     "--history", str(history), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_bench_compare_without_baseline_fails(self, capsys,
                                                  tmp_path):
        reports = tmp_path / "reports"
        reports.mkdir()
        assert main(["bench", "compare", "--reports", str(reports),
                     "--history",
                     str(tmp_path / "missing.json")]) == 1
        assert "bench compare" in capsys.readouterr().out


class TestLintCommand:
    def test_deep_sweep_is_clean(self, capsys):
        assert main(["lint", "--deep", "--config",
                     "DBA_2LSU_EIS"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_deep_json_output(self, capsys):
        assert main(["lint", "--deep", "--config", "DBA_2LSU_EIS",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert not any(d["severity"] == "error"
                       for d in payload["diagnostics"])

    def test_deep_flags_defective_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.s"
        bad.write_text("main:\n"
                       "  slli a8, a2, 2\n"
                       "  addi a8, a8, 2\n"
                       "  l32i a10, a8, 0\n"
                       "  halt\n")
        # The shallow tier can't see the defect; the deep tier can.
        assert main(["lint", str(bad)]) == 0
        capsys.readouterr()
        assert main(["lint", "--deep", str(bad)]) == 1
        assert "VAL002" in capsys.readouterr().out
