"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "intersection"])
        assert args.config == "DBA_2LSU_EIS"
        assert args.size == 5000

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sort", "--config",
                                       "PENTIUM"])


class TestCommands:
    def test_run_set_operation(self, capsys):
        assert main(["run", "intersection", "--size", "500"]) == 0
        out = capsys.readouterr().out
        assert "Melem/s" in out
        assert "DBA_2LSU_EIS" in out

    def test_run_sort_scalar_config(self, capsys):
        assert main(["run", "sort", "--size", "200", "--config",
                     "DBA_1LSU"]) == 0
        out = capsys.readouterr().out
        assert "sorted 200 values" in out

    def test_run_without_partial_load(self, capsys):
        assert main(["run", "union", "--size", "300",
                     "--no-partial-load"]) == 0
        assert "union" in capsys.readouterr().out

    def test_synth(self, capsys):
        assert main(["synth", "--config", "108Mini"]) == 0
        out = capsys.readouterr().out
        assert "logic" in out and "fmax" in out

    def test_synth_breakdown_28nm(self, capsys):
        assert main(["synth", "--config", "DBA_2LSU_EIS", "--tech",
                     "gf28slp", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "op:union" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "difference", "--unroll", "1"]) == 0
        out = capsys.readouterr().out
        assert "store_sop_dif" in out
        assert "ld_ldp_shuffle" in out

    def test_disasm_sort(self, capsys):
        assert main(["disasm", "sort", "--unroll", "1"]) == 0
        out = capsys.readouterr().out
        assert "merge_st" in out

    def test_experiments_dispatch(self, capsys):
        assert main(["experiments", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out
