"""Correctness and calibration tests for swsort / swset."""

import random

import pytest

from repro.baselines.swset import swset_intersect
from repro.baselines.swsort import swsort
from repro.baselines.x86 import (I7_920, PUBLISHED_SWSET_MEPS,
                                 PUBLISHED_SWSORT_MEPS, Q9550,
                                 X86CostModel,
                                 extrapolate_sort_throughput,
                                 measure_swset, swset_model)
from repro.workloads.sets import generate_set_pair


class TestSwsortCorrectness:
    @pytest.mark.parametrize("size", [0, 1, 3, 4, 15, 16, 17, 100, 500,
                                      1024])
    def test_sizes(self, size):
        rng = random.Random(size)
        values = [rng.randrange(1 << 31) for _ in range(size)]
        result, _machine = swsort(values)
        assert result == sorted(values)

    def test_duplicates(self):
        values = [7, 3, 7, 3, 1] * 30
        result, _machine = swsort(values)
        assert result == sorted(values)

    def test_already_sorted(self):
        values = list(range(256))
        result, _machine = swsort(values)
        assert result == values


class TestSwsetCorrectness:
    @pytest.mark.parametrize("selectivity", [0.0, 0.5, 1.0])
    def test_selectivities(self, selectivity):
        set_a, set_b = generate_set_pair(500, selectivity=selectivity,
                                         seed=3)
        result, _machine = swset_intersect(set_a, set_b)
        assert result == sorted(set(set_a) & set(set_b))

    def test_asymmetric_sizes(self):
        set_a, set_b = generate_set_pair(301, 77, selectivity=0.6,
                                         seed=4)
        result, _machine = swset_intersect(set_a, set_b)
        assert result == sorted(set(set_a) & set(set_b))

    def test_scalar_tail_paths(self):
        result, _machine = swset_intersect([1, 2, 3], [2, 3, 4])
        assert result == [2, 3]

    def test_empty(self):
        assert swset_intersect([], [1, 2])[0] == []


class TestCalibration:
    def test_swsort_lands_on_published_throughput(self):
        rng = random.Random(0)
        sample = [rng.randrange(1 << 31) for _ in range(8192)]
        throughput = extrapolate_sort_throughput(sample, 512_000)
        assert throughput == pytest.approx(PUBLISHED_SWSORT_MEPS,
                                           rel=0.05)

    def test_swset_lands_on_published_throughput(self):
        set_a, set_b = generate_set_pair(30_000, selectivity=0.5,
                                         seed=7)
        _result, throughput, _machine = measure_swset(set_a, set_b)
        assert throughput == pytest.approx(PUBLISHED_SWSET_MEPS,
                                           rel=0.05)

    def test_swset_throughput_size_invariant(self):
        """The linear algorithm's per-element cost must not drift with
        size — that is what justifies sampling instead of simulating
        2x10M elements."""
        throughputs = []
        for size in (5_000, 40_000):
            set_a, set_b = generate_set_pair(size, selectivity=0.5,
                                             seed=8)
            _r, throughput, _m = measure_swset(set_a, set_b)
            throughputs.append(throughput)
        assert throughputs[0] == pytest.approx(throughputs[1], rel=0.05)

    def test_sort_throughput_decreases_with_size(self):
        rng = random.Random(1)
        sample = [rng.randrange(1 << 31) for _ in range(4096)]
        small = extrapolate_sort_throughput(sample, 10_000)
        large = extrapolate_sort_throughput(sample, 1_000_000)
        assert large < small  # log-factor growth in work


class TestCostModel:
    def test_cycles_weighted_by_class(self):
        model = X86CostModel(Q9550, cpi={"load": 2.0, "scalar": 0.5},
                             calibration=1.0)
        assert model.cycles({"load": 10, "scalar": 4}) == 22.0

    def test_calibration_scales(self):
        model = X86CostModel(Q9550, cpi={"load": 1.0}, calibration=2.0)
        assert model.cycles({"load": 5}) == 10.0

    def test_throughput_and_energy(self):
        model = swset_model()
        counts = {"load": I7_920.clock_mhz}  # ~1M elements/second-ish
        throughput = model.throughput_meps(counts, 1000)
        assert throughput > 0
        assert model.energy_per_element_nj(100.0) \
            == pytest.approx(1300.0)

    def test_processor_specs_match_paper(self):
        assert Q9550.tdp_w == 95
        assert I7_920.tdp_w == 130
        assert Q9550.feature_nm == I7_920.feature_nm == 45
        assert I7_920.threads == 8
