"""Unit tests for the simulated SSE vector unit."""

import random

from repro.baselines.sse import SimdMachine, bitonic_merge4, transpose4


class TestVectorOps:
    def test_min_max(self):
        machine = SimdMachine()
        assert machine.min((1, 5, 3, 7), (2, 4, 6, 8)) == (1, 4, 3, 7)
        assert machine.max((1, 5, 3, 7), (2, 4, 6, 8)) == (2, 5, 6, 8)

    def test_shuffles(self):
        machine = SimdMachine()
        assert machine.shuffle((1, 2, 3, 4), (3, 2, 1, 0)) \
            == (4, 3, 2, 1)
        assert machine.unpack_lo((1, 2, 3, 4), (5, 6, 7, 8)) \
            == (1, 5, 2, 6)
        assert machine.unpack_hi((1, 2, 3, 4), (5, 6, 7, 8)) \
            == (3, 7, 4, 8)
        assert machine.movelh((1, 2, 3, 4), (5, 6, 7, 8)) \
            == (1, 2, 5, 6)
        assert machine.movehl((1, 2, 3, 4), (5, 6, 7, 8)) \
            == (3, 4, 7, 8)
        assert machine.shuffle2((1, 2, 3, 4), (5, 6, 7, 8),
                                (0, 2, 1, 3)) == (1, 3, 6, 8)

    def test_memory_ops(self):
        machine = SimdMachine()
        buffer = [0] * 8
        machine.store(buffer, 2, (9, 8, 7, 6))
        assert buffer[2:6] == [9, 8, 7, 6]
        assert machine.load(buffer, 2) == (9, 8, 7, 6)

    def test_all_to_all_eq(self):
        machine = SimdMachine()
        mask = machine.all_to_all_eq((1, 2, 3, 4), (4, 9, 2, 11))
        assert mask == (0, 1, 0, 1)

    def test_movemask(self):
        machine = SimdMachine()
        assert machine.movemask((1, 0, 1, 1)) == 0b1101

    def test_operation_counting(self):
        machine = SimdMachine()
        machine.min((0,) * 4, (0,) * 4)
        machine.shuffle((0,) * 4, (0, 1, 2, 3))
        machine.scalar(5)
        assert machine.counts["minmax"] == 1
        assert machine.counts["shuffle"] == 1
        assert machine.counts["scalar"] == 5
        machine.reset()
        assert machine.total_ops() == 0


class TestNetworks:
    def test_transpose(self):
        machine = SimdMachine()
        rows = ((1, 2, 3, 4), (5, 6, 7, 8), (9, 10, 11, 12),
                (13, 14, 15, 16))
        cols = transpose4(machine, list(rows))
        assert cols[0] == (1, 5, 9, 13)
        assert cols[3] == (4, 8, 12, 16)

    def test_bitonic_merge_random(self):
        machine = SimdMachine()
        rng = random.Random(2)
        for _ in range(300):
            a = sorted(rng.randrange(256) for _ in range(4))
            b = sorted(rng.randrange(256) for _ in range(4))
            low, high = bitonic_merge4(machine, tuple(a), tuple(b))
            assert list(low) + list(high) == sorted(a + b)

    def test_bitonic_merge_zero_one_exhaustive(self):
        machine = SimdMachine()
        for zeros_a in range(5):
            for zeros_b in range(5):
                a = tuple([0] * zeros_a + [1] * (4 - zeros_a))
                b = tuple([0] * zeros_b + [1] * (4 - zeros_b))
                low, high = bitonic_merge4(machine, a, b)
                assert list(low) + list(high) == sorted(a + b)
