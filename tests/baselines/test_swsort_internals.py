"""Unit tests for swsort's phases (presort, merge passes)."""

import random

from repro.baselines.sse import SimdMachine
from repro.baselines.swsort import merge_pass, presort_runs


class TestPresort:
    def test_runs_of_four_are_sorted(self):
        rng = random.Random(4)
        values = [rng.randrange(1000) for _ in range(64)]
        machine = SimdMachine()
        output = presort_runs(machine, values)
        for base in range(0, 64, 4):
            run = output[base:base + 4]
            assert run == sorted(values[base:base + 4])

    def test_multiset_preserved(self):
        rng = random.Random(5)
        values = [rng.randrange(100) for _ in range(80)]
        machine = SimdMachine()
        output = presort_runs(machine, values)
        assert sorted(output) == sorted(values)

    def test_tail_not_multiple_of_sixteen(self):
        values = list(range(23, 0, -1))  # 23 values
        machine = SimdMachine()
        output = presort_runs(machine, values)
        for base in range(0, 20, 4):
            assert output[base:base + 4] \
                == sorted(values[base:base + 4])
        assert output[20:23] == sorted(values[20:23])

    def test_counts_simd_operations(self):
        machine = SimdMachine()
        presort_runs(machine, list(range(32)))
        assert machine.counts["minmax"] > 0
        assert machine.counts["shuffle"] > 0


class TestMergePass:
    def merged(self, values, run_length):
        machine = SimdMachine()
        return merge_pass(machine, list(values), run_length)

    def test_merges_adjacent_runs(self):
        source = [1, 3, 5, 7, 2, 4, 6, 8]
        assert self.merged(source, 4) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_short_tail_run(self):
        source = sorted([9, 4, 6, 1]) + sorted([5, 2])  # runs 4 + 2
        assert self.merged(source, 4) == sorted(source)

    def test_odd_run_count_copies_last(self):
        source = [1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 9, 9]
        result = self.merged(sorted(source[:4]) + sorted(source[4:8])
                             + sorted(source[8:]), 4)
        assert result[8:] == sorted(source[8:])

    def test_uneven_b_tail_interleaves_correctly(self):
        """Regression: the SIMD loop must stop when the smaller-head
        run has fewer than four elements left (found by hypothesis)."""
        source = sorted([0, 0, 0, 1, 1, 1, 1, 1]) + sorted([0, 0, 0,
                                                            0, 0])
        result = self.merged(source, 8)
        assert result == sorted(source)

    def test_large_random_pass(self):
        rng = random.Random(6)
        runs = []
        for _ in range(8):
            runs.extend(sorted(rng.randrange(10_000)
                               for _ in range(16)))
        result = self.merged(runs, 16)
        for base in range(0, len(runs), 32):
            assert result[base:base + 32] \
                == sorted(runs[base:base + 32])
