"""Fault model and deterministic plan sampling."""

import random

from repro.faults.plan import (DmaDrop, FaultPlan, LsuDelay, MemoryBitFlip,
                               OpcodeCorrupt, RegisterCorrupt, TrialProfile,
                               sample_plan)


def _profile(dma=0):
    return TrialProfile(memory_ranges=[("dmem0", 0, 64)],
                        registers=[2, 3, 4], steps=500, entries=20,
                        states=[("eis", "SET_A", 8)], num_lsus=2,
                        dma_descriptors=dma)


class TestFaultObjects:
    def test_to_dict_round_trips_slots(self):
        fault = MemoryBitFlip("dmem0", 12, 31, after_accesses=99)
        assert fault.to_dict() == {"kind": "mem_flip", "region": "dmem0",
                                   "word_index": 12, "bit": 31,
                                   "after_accesses": 99}

    def test_masks_are_32_bit(self):
        assert RegisterCorrupt(2, 1 << 40, 0).mask == 0
        assert OpcodeCorrupt(0, 0, -1).mask == 0xFFFFFFFF

    def test_plan_is_iterable_and_sized(self):
        plan = FaultPlan([DmaDrop(0), LsuDelay(0, 1, 2)])
        assert len(plan) == 2
        assert [fault.kind for fault in plan] == ["dma_drop", "lsu_delay"]
        assert len(plan.to_dict()["faults"]) == 2


class TestSampling:
    def test_same_seed_same_plan(self):
        plans = [sample_plan(random.Random("trial:7"), _profile())
                 for _ in range(2)]
        assert plans[0].to_dict() == plans[1].to_dict()

    def test_different_seeds_cover_multiple_kinds(self):
        kinds = {sample_plan(random.Random("t:%d" % i),
                             _profile(dma=2)).faults[0].kind
                 for i in range(200)}
        assert {"mem_flip", "reg_corrupt", "state_corrupt",
                "opcode_corrupt", "lsu_delay", "dma_drop",
                "dma_delay"} <= kinds

    def test_dma_faults_only_with_descriptors(self):
        kinds = {sample_plan(random.Random("t:%d" % i),
                             _profile(dma=0)).faults[0].kind
                 for i in range(200)}
        assert "dma_drop" not in kinds
        assert "dma_delay" not in kinds

    def test_sampled_faults_respect_the_profile(self):
        profile = _profile(dma=3)
        for i in range(100):
            fault = sample_plan(random.Random("r:%d" % i),
                                profile).faults[0]
            if isinstance(fault, MemoryBitFlip):
                assert fault.region == "dmem0"
                assert 0 <= fault.word_index < 64
            elif isinstance(fault, RegisterCorrupt):
                assert fault.reg in (2, 3, 4)
                assert 0 <= fault.at_step < 500
            elif isinstance(fault, DmaDrop):
                assert 0 <= fault.descriptor < 3

    def test_exactly_one_fault_per_plan(self):
        for i in range(50):
            assert len(sample_plan(random.Random(i), _profile())) == 1
