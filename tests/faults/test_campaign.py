"""Campaign runner: determinism, outcome taxonomy, crash isolation.

The smoke parameters (dma_poll, 16 trials, size 100, seed 42) are the
same ones CI pins: they produce at least one masked and one detected
outcome plus watchdog hangs, with zero harness crashes.
"""

import json
import warnings

import pytest

from repro.faults import run_campaign
from repro.faults.campaign import OUTCOMES

SMOKE = dict(kernel="dma_poll", trials=16, size=100, seed=42)


def _campaign(**overrides):
    kwargs = dict(SMOKE)
    kwargs.update(overrides)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return run_campaign(kwargs.pop("kernel"), **kwargs)


@pytest.fixture(scope="module")
def smoke_report():
    return _campaign()


class TestReportShape:
    def test_header_and_trial_list(self, smoke_report):
        assert smoke_report["campaign"] == {
            "kernel": "dma_poll", "config": "DBA_1LSU", "size": 100,
            "seed": 42, "trials": 16}
        assert len(smoke_report["trials"]) == 16
        for trial in smoke_report["trials"]:
            assert trial["outcome"] in OUTCOMES
            assert trial["faults"], "every trial injects one fault"

    def test_summary_accounts_for_every_trial(self, smoke_report):
        assert sum(smoke_report["summary"].values()) == 16

    def test_metrics_snapshot(self, smoke_report):
        metrics = smoke_report["metrics"]
        assert metrics["faults.trials"] == 16
        assert metrics["faults.fired"] > 0
        for name in OUTCOMES:
            assert metrics["faults.%s" % name] \
                == smoke_report["summary"][name]

    def test_report_is_json_serializable(self, smoke_report):
        assert json.loads(json.dumps(smoke_report)) == smoke_report


class TestOutcomeMix:
    def test_smoke_mix_has_masked_and_detected(self, smoke_report):
        summary = smoke_report["summary"]
        assert summary["masked"] >= 1
        assert summary["detected"] >= 1
        assert summary["hang"] >= 1, \
            "a dropped DMA descriptor must trip the watchdog"
        assert summary["crash"] == 0, \
            "harness crashes: %r" % [t for t in smoke_report["trials"]
                                     if t["outcome"] == "crash"]


class TestDeterminism:
    def test_repeat_is_byte_identical(self, smoke_report):
        assert json.dumps(_campaign()) == json.dumps(smoke_report)

    def test_parallel_matches_serial(self, smoke_report):
        assert json.dumps(_campaign(jobs=2)) == json.dumps(smoke_report)

    def test_no_fastpath_matches(self, smoke_report, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert json.dumps(_campaign()) == json.dumps(smoke_report)


class TestValidation:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign kernel"):
            run_campaign("no_such_kernel")

    def test_eis_kernel_needs_eis_config(self):
        with pytest.raises(ValueError, match="EIS"):
            run_campaign("intersection", config="DBA_1LSU", trials=1)


def _exploding_worker(kernel, config, size, seed, lo, hi):
    raise RuntimeError("synthetic chunk failure")


class TestCrashIsolation:
    def test_failed_chunk_reports_crash_trials(self, monkeypatch):
        from repro.faults import campaign
        monkeypatch.setattr(campaign, "_campaign_worker",
                            _exploding_worker)
        report = _campaign(jobs=2, retries=0)
        assert all(trial["outcome"] == "crash"
                   for trial in report["trials"])
        assert all(trial["detail"].startswith("supervisor:")
                   for trial in report["trials"])
