"""FaultInjector: arming, firing, and program corruption."""

import pytest

from repro.configs.catalog import build_processor
from repro.core.kernels import PortableProgram
from repro.cpu.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (FaultPlan, LsuDelay, MemoryBitFlip,
                               OpcodeCorrupt, RegisterCorrupt)

SUM_LOOP = """
main:
  movi a2, 0
  movi a3, 0
  movi a4, 64
loop:
  l32i a5, a2, 0
  add a3, a3, a5
  addi a2, a2, 4
  bltu a2, a4, loop
  mv a2, a3
  halt
"""


@pytest.fixture()
def processor():
    return build_processor("DBA_1LSU")


def _run_sum(processor, injector=None):
    processor.load_program(SUM_LOOP)
    processor.write_words(0, list(range(1, 17)))
    if injector is None:
        return processor.run(entry="main")
    with injector:
        return processor.run(entry="main")


class TestArming:
    def test_latent_flip_applies_at_arm_time(self, processor):
        processor.write_words(0, [0])
        plan = FaultPlan([MemoryBitFlip("dmem0", 0, 5)])
        injector = FaultInjector(processor, plan)
        injector.arm()
        assert processor.read_words(0, 1) == [1 << 5]
        assert injector.fired == [("mem_flip", "arm")]
        injector.disarm()

    def test_double_arm_rejected(self, processor):
        injector = FaultInjector(processor, FaultPlan())
        injector.arm()
        with pytest.raises(ConfigurationError):
            injector.arm()

    def test_disarm_removes_all_hooks(self, processor):
        plan = FaultPlan([MemoryBitFlip("dmem0", 0, 1, after_accesses=5),
                          LsuDelay(0, 1, 9),
                          RegisterCorrupt(5, 1, at_step=3)])
        with FaultInjector(processor, plan):
            assert processor._fault_hook is not None
            assert processor.lsus[0].fault_hook is not None
        assert processor._fault_hook is None
        assert processor.lsus[0].fault_hook is None
        for region in processor.memory_map:
            assert region.fault_hook is None

    def test_armed_run_forces_interpreter(self, processor):
        plan = FaultPlan([RegisterCorrupt(9, 1, at_step=10_000_000)])
        result = _run_sum(processor, FaultInjector(processor, plan))
        assert result.stats.metric("cpu.run.fastpath") == 0
        # the fault targets a step past the end: harmless
        assert result.reg("a2") == sum(range(1, 17))


class TestFiring:
    def test_register_corrupt_changes_the_result(self, processor):
        clean = _run_sum(processor)
        plan = FaultPlan([RegisterCorrupt(3, 1 << 20, at_step=8)])
        injector = FaultInjector(processor, plan)
        faulty = _run_sum(processor, injector)
        assert injector.fired == [("reg_corrupt", "step 8")]
        assert faulty.reg("a2") != clean.reg("a2")

    def test_lsu_delay_is_timing_only(self, processor):
        clean = _run_sum(processor)
        plan = FaultPlan([LsuDelay(0, after_accesses=2, extra_cycles=7,
                                   length=4)])
        injector = FaultInjector(processor, plan)
        delayed = _run_sum(processor, injector)
        assert injector.fired and injector.fired[0][0] == "lsu_delay"
        assert delayed.reg("a2") == clean.reg("a2")
        assert delayed.cycles > clean.cycles

    def test_mid_run_flip_fires_on_access_count(self, processor):
        plan = FaultPlan([MemoryBitFlip("dmem0", 0, 0,
                                        after_accesses=3)])
        injector = FaultInjector(processor, plan)
        _run_sum(processor, injector)
        assert injector.fired == [("mem_flip", "access 3")]

    def test_unknown_region_is_skipped(self, processor):
        plan = FaultPlan([MemoryBitFlip("no_such_mem", 0, 0)])
        injector = FaultInjector(processor, plan)
        result = _run_sum(processor, injector)
        assert injector.fired == []
        assert result.reg("a2") == sum(range(1, 17))


class TestProgramCorruption:
    def test_corrupt_program_clones_and_refingerprints(self, processor):
        program = processor.assembler.assemble(SUM_LOOP, "sum")
        portable = PortableProgram(program)
        injector = FaultInjector(
            processor, FaultPlan([OpcodeCorrupt(1, 0, 0x4)]))
        clone = injector.corrupt_program(portable)
        assert clone is not portable
        assert clone.entries != portable.entries
        assert clone.source_name == "sum+fault"
        assert clone.fingerprint != portable.fingerprint
        assert clone.validate()
        assert portable.validate()  # original untouched
        assert injector.fired == [("opcode_corrupt", "arm")]

    def test_no_opcode_faults_returns_input(self, processor):
        program = processor.assembler.assemble(SUM_LOOP, "sum")
        portable = PortableProgram(program)
        injector = FaultInjector(
            processor, FaultPlan([RegisterCorrupt(2, 1, 0)]))
        assert injector.corrupt_program(portable) is portable
