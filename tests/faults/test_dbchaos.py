"""Db-layer chaos harness: injector, sampler, classifier, campaigns.

The acceptance contract (ISSUE 9): with one replica a seeded
worker-kill campaign completes every query byte-identical to the
unsharded engine (every trial ``masked``); with zero replicas the same
campaign yields only ``degraded`` outcomes — typed partial answers,
never an unhandled exception and never a silently wrong RID list.
Campaign reports are byte-identical across repeated runs.
"""

import json

import pytest

from repro.faults.db import (DB_FAULT_KINDS, DB_OUTCOMES, WEDGE_CYCLES,
                             DbFaultInjector, DbTrialProfile,
                             ResponseCorrupt, ResponseDelay, WorkerKill,
                             _classify, chaos_queries, run_db_campaign,
                             sample_db_plan)
from repro.faults.plan import FaultPlan

# Small-but-real campaign shape: quick enough for the unit suite,
# still 4 shards x multi-query batches with every query touching
# every shard.  CI runs the issue-scale campaign via ``repro db
# chaos``.
CAMPAIGN = dict(shards=4, trials=10, seed=42, rows=256, queries=8)


def make_injector(*faults):
    return DbFaultInjector(FaultPlan(list(faults)))


# ---------------------------------------------------------------------------
# injector semantics
# ---------------------------------------------------------------------------

class TestInjector:
    def test_kill_is_persistent_from_at_query(self):
        injector = make_injector(WorkerKill(1, 2))
        assert not injector.host_killed(1, 0)
        assert not injector.host_killed(1, 1)
        assert injector.host_killed(1, 2)
        assert injector.host_killed(1, 7)
        assert not injector.host_killed(0, 5)
        assert len(injector.fired) == 2

    def test_earliest_kill_wins_per_host(self):
        injector = make_injector(WorkerKill(0, 5), WorkerKill(0, 1))
        assert not injector.host_killed(0, 0)
        assert injector.host_killed(0, 1)

    def test_delay_is_one_shot(self):
        injector = make_injector(ResponseDelay(0, 1, 100))
        assert injector.delay_cycles(0, 0) == 0
        assert injector.delay_cycles(0, 1) == 100
        assert injector.delay_cycles(0, 1) == 0
        assert injector.fired == [
            ("response_delay", "shard 0 query 1 +100 cycles")]

    def test_corrupt_drop_flip_inject(self):
        rids = [10, 20, 30]
        drop = make_injector(ResponseCorrupt(0, 0, "drop", 1, 0))
        mutated, fired = drop.deliver(0, 0, rids)
        assert fired and mutated == [10, 30]
        flip = make_injector(ResponseCorrupt(0, 0, "flip", 2, 3))
        mutated, fired = flip.deliver(0, 0, rids)
        assert fired and mutated == [10, 20, 30 ^ 8]
        inject = make_injector(ResponseCorrupt(0, 0, "inject", 1, 4))
        mutated, fired = inject.deliver(0, 0, rids)
        assert fired and len(mutated) == 4
        # The original list is never mutated in place.
        assert rids == [10, 20, 30]

    def test_corrupt_is_one_shot(self):
        injector = make_injector(ResponseCorrupt(0, 0, "drop", 0, 0))
        _mutated, fired = injector.deliver(0, 0, [1, 2])
        assert fired
        _mutated, fired = injector.deliver(0, 0, [1, 2])
        assert not fired

    def test_noop_corruption_does_not_fire(self):
        injector = make_injector(ResponseCorrupt(0, 0, "drop", 0, 0))
        mutated, fired = injector.deliver(0, 0, [])
        assert not fired and mutated == []
        # ...and stays armed for a later non-empty delivery.
        _mutated, fired = injector.deliver(0, 0, [5])
        assert fired

    def test_inject_into_empty_list_fires(self):
        injector = make_injector(ResponseCorrupt(0, 0, "inject", 3, 2))
        mutated, fired = injector.deliver(0, 0, [])
        assert fired and len(mutated) == 1

    def test_rejects_non_db_faults(self):
        from repro.faults.plan import MemoryBitFlip
        with pytest.raises(TypeError):
            DbFaultInjector(FaultPlan([MemoryBitFlip("a", 0, 0)]))

    def test_corrupt_mode_is_validated(self):
        with pytest.raises(ValueError):
            ResponseCorrupt(0, 0, "scramble", 0, 0)


# ---------------------------------------------------------------------------
# sampler + query batch
# ---------------------------------------------------------------------------

class TestSampler:
    def test_one_fault_per_plan_within_profile(self):
        import random
        rng = random.Random("sampler-test")
        profile = DbTrialProfile(shards=4, queries=8, delay_scale=64)
        for _ in range(50):
            plan = sample_db_plan(rng, profile)
            assert len(plan) == 1

    def test_kind_restriction(self):
        import random
        rng = random.Random("kill-only")
        profile = DbTrialProfile(shards=4, queries=8, delay_scale=64)
        for _ in range(20):
            plan = sample_db_plan(rng, profile, kinds=("kill",))
            assert isinstance(plan.faults[0], WorkerKill)

    def test_unknown_kind_raises(self):
        import random
        profile = DbTrialProfile(shards=4, queries=8, delay_scale=64)
        with pytest.raises(ValueError):
            sample_db_plan(random.Random(0), profile,
                           kinds=("gamma-ray",))

    def test_chaos_queries_deterministic_and_where_only(self):
        from repro.db.bench import build_demo_table
        from repro.db.predicates import signature
        table = build_demo_table(rows=128, seed=3)
        first = chaos_queries(table, 8, seed=9)
        second = chaos_queries(table, 8, seed=9)
        assert [signature(q.predicate) for q in first] \
            == [signature(q.predicate) for q in second]
        for query in first:
            assert query.order_by is None and query.limit is None


# ---------------------------------------------------------------------------
# trial classifier
# ---------------------------------------------------------------------------

class _FakeResult:
    def __init__(self, rids, complete=True, makespan=10, failovers=0):
        self.rids = rids
        self.complete = complete
        self.makespan_cycles = makespan
        self.failovers = failovers


class TestClassifier:
    REF = [[1, 2, 3], [4, 5]]

    def test_masked(self):
        outcome, detail, degraded, failovers = _classify(
            [_FakeResult([1, 2, 3], failovers=2), _FakeResult([4, 5])],
            self.REF, fuel=100)
        assert outcome == "masked" and detail is None
        assert degraded == 0 and failovers == 2

    def test_degraded_subset(self):
        outcome, _detail, degraded, _f = _classify(
            [_FakeResult([1, 3], complete=False), _FakeResult([4, 5])],
            self.REF, fuel=100)
        assert outcome == "degraded" and degraded == 1

    def test_complete_but_different_is_wrong_result(self):
        outcome, detail, _d, _f = _classify(
            [_FakeResult([1, 2, 9]), _FakeResult([4, 5])],
            self.REF, fuel=100)
        assert outcome == "wrong_result"
        assert "complete answer differs" in detail

    def test_degraded_non_subset_is_wrong_result(self):
        outcome, detail, _d, _f = _classify(
            [_FakeResult([1, 99], complete=False),
             _FakeResult([4, 5])], self.REF, fuel=100)
        assert outcome == "wrong_result"
        assert "not a subset" in detail

    def test_hang_beats_degraded(self):
        outcome, _detail, degraded, _f = _classify(
            [_FakeResult([1, 2], complete=False, makespan=101),
             _FakeResult([4, 5])], self.REF, fuel=100)
        assert outcome == "hang" and degraded == 1

    def test_wrong_result_beats_hang(self):
        outcome, _detail, _d, _f = _classify(
            [_FakeResult([9, 9], makespan=10 ** 9)],
            [[1, 2]], fuel=100)
        assert outcome == "wrong_result"


# ---------------------------------------------------------------------------
# campaigns (the acceptance scenarios, unit-suite scale)
# ---------------------------------------------------------------------------

class TestCampaigns:
    def test_kill_with_replica_masks_every_trial(self):
        report = run_db_campaign(replication=1, kinds=("kill",),
                                 **CAMPAIGN)
        assert report["summary"]["masked"] == CAMPAIGN["trials"]
        assert all(report["summary"][name] == 0
                   for name in DB_OUTCOMES if name != "masked")
        assert report["faults"]["db.fault.kills"] >= 1
        assert report["faults"]["db.fault.failovers"] >= 1

    def test_kill_without_replica_only_degrades(self):
        report = run_db_campaign(replication=0, kinds=("kill",),
                                 **CAMPAIGN)
        summary = report["summary"]
        assert summary["degraded"] == CAMPAIGN["trials"]
        assert summary["masked"] == summary["failed"] == 0
        assert summary["wrong_result"] == 0
        for trial in report["trials"]:
            assert trial["outcome"] == "degraded"
            assert trial["queries_degraded"] >= 1

    def test_report_is_byte_identical_across_runs(self):
        first = run_db_campaign(replication=1, trials=6, shards=4,
                                seed=7, rows=192, queries=6)
        second = run_db_campaign(replication=1, trials=6, shards=4,
                                 seed=7, rows=192, queries=6)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True)

    def test_corruption_always_detected_never_merged(self):
        report = run_db_campaign(replication=1, kinds=("corrupt",),
                                 **CAMPAIGN)
        summary = report["summary"]
        assert summary["wrong_result"] == 0 and summary["failed"] == 0
        faults = report["faults"]
        assert faults["db.fault.corruptions"] >= 1
        assert faults["db.fault.corruptions_detected"] \
            == faults["db.fault.corruptions"]

    def test_wedges_hang_without_a_deadline(self):
        report = run_db_campaign(replication=1, kinds=("delay",),
                                 deadline="none", **CAMPAIGN)
        summary = report["summary"]
        assert summary["hang"] >= 1
        assert summary["wrong_result"] == 0 and summary["failed"] == 0
        assert summary["hang"] + summary["masked"] \
            == CAMPAIGN["trials"]
        assert report["campaign"]["deadline_cycles"] is None

    def test_auto_deadline_hedges_wedges_onto_replicas(self):
        report = run_db_campaign(replication=1, kinds=("delay",),
                                 deadline="auto", **CAMPAIGN)
        summary = report["summary"]
        assert summary["hang"] == 0
        assert summary["wrong_result"] == 0 and summary["failed"] == 0
        assert summary["masked"] == CAMPAIGN["trials"]
        assert report["faults"]["db.fault.hedges"] >= 1

    def test_report_shape(self):
        report = run_db_campaign(replication=1, trials=3, shards=4,
                                 seed=5, rows=128, queries=4)
        campaign = report["campaign"]
        assert campaign["layer"] == "db"
        assert campaign["kinds"] == list(DB_FAULT_KINDS)
        assert campaign["fuel_cycles"] > 0
        assert set(report["summary"]) == set(DB_OUTCOMES)
        assert len(report["trials"]) == 3
        for trial in report["trials"]:
            assert trial["outcome"] in DB_OUTCOMES
            assert len(trial["faults"]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_db_campaign(kinds=())
        with pytest.raises(ValueError):
            run_db_campaign(kinds=("meteor",))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_db_chaos_json(self, capsys):
        from repro.cli import main
        status = main(["db", "chaos", "--trials", "3", "--rows", "128",
                       "--queries", "4", "--json"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaign"]["layer"] == "db"
        assert sum(report["summary"].values()) == 3

    def test_db_chaos_text_and_out(self, capsys, tmp_path):
        from repro.cli import main
        out = tmp_path / "chaos.json"
        status = main(["db", "chaos", "--trials", "3", "--rows", "128",
                       "--queries", "4", "--kinds", "kill",
                       "--replicas", "0", "--out", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "degraded" in text
        report = json.loads(out.read_text())
        assert report["summary"]["degraded"] == 3

    def test_wedge_delays_classify_as_wedge_constant(self):
        # Guard the constant the docs cite: a wedge dwarfs any fuel.
        assert WEDGE_CYCLES == 1 << 40
