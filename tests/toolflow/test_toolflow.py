"""Tests for the Figure 4 development flow helpers."""

import pytest

from repro.configs.catalog import build_processor
from repro.core.kernels import run_set_operation, set_operation_kernel
from repro.core.scalar_kernels import run_scalar_set_operation
from repro.toolflow import (DevelopmentFlow, VerificationFailure,
                            check_instruction, equivalence_check,
                            extension_candidates)
from repro.workloads.sets import generate_set_pair


class TestCheckInstruction:
    def test_passing_cases(self, eis_2lsu_partial):
        ext = eis_2lsu_partial.extension_states["db_eis"]
        ext.setdp.word_a.value = [1, 2, 3, 4]
        ext.setdp.word_b.value = [1, 2, 3, 4]
        ext.setdp.result_cnt.value = 0
        ext.setdp.fifo_cnt.value = 0
        ext.setdp.store_cnt.value = 0
        # store_sop_int: both windows full and matching -> flag 1
        count = check_instruction(eis_2lsu_partial, "store_sop_int",
                                  [((), 1)])
        assert count == 1

    def test_failing_case_raises(self, eis_2lsu_partial):
        ext = eis_2lsu_partial.extension_states["db_eis"]
        ext.setdp.op_init(eis_2lsu_partial)
        with pytest.raises(VerificationFailure, match="store_sop_int"):
            check_instruction(eis_2lsu_partial, "store_sop_int",
                              [((), 12345)])


class TestEquivalenceCheck:
    def test_clean_program_passes(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            set_operation_kernel("union", num_lsus=2, unroll=4))
        checked = equivalence_check(eis_2lsu_partial, program)
        assert checked == program.instruction_count()

    def test_detects_corruption(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            "main:\n  movi a2, 5\n  addi a2, a2, 1\n  halt")
        words = program.encode()

        class Corrupted(type(program)):
            def encode(self_inner):
                bad = list(words)
                bad[1] ^= 0x00100000  # flip a register field bit
                return bad

        program.__class__ = Corrupted
        with pytest.raises(VerificationFailure):
            equivalence_check(eis_2lsu_partial, program)


class TestDevelopmentFlow:
    def test_iterations_and_speedups(self):
        set_a, set_b = generate_set_pair(300, selectivity=0.5, seed=6)
        expected = sorted(set(set_a) & set(set_b))

        def scalar_app(processor):
            return run_scalar_set_operation(processor, "intersection",
                                            set_a, set_b)

        def eis_app(processor):
            return run_set_operation(processor, "intersection", set_a,
                                     set_b)

        flow = DevelopmentFlow(scalar_app, expected)
        first = flow.iterate("scalar", build_processor("DBA_1LSU"))
        assert first.verified
        flow.application = eis_app
        second = flow.iterate("eis", build_processor("DBA_2LSU_EIS"))
        assert second.verified
        assert second.speedup_over(first) > 5
        assert "scalar" in flow.summary()
        assert not flow.improvement_exhausted()

    def test_verification_catches_wrong_reference(self):
        def app(processor):
            return [1, 2, 3], None

        class FakeResult:
            cycles = 10

        def fake_app(processor):
            return [1, 2, 3], FakeResult()

        flow = DevelopmentFlow(fake_app, reference=[9])
        report = flow.iterate("bad", object())
        assert not report.verified

    def test_improvement_exhausted_when_gains_flatten(self):
        class FakeResult:
            def __init__(self, cycles):
                self.cycles = cycles

        cycles = iter([1000, 990])

        def app(processor):
            return [], FakeResult(next(cycles))

        flow = DevelopmentFlow(app, reference=[])
        flow.iterate("one", None)
        flow.iterate("two", None)
        assert flow.improvement_exhausted()


class TestHotspots:
    def test_candidates_ranked(self, dba_1lsu):
        from repro.core.scalar_kernels import (
            intersection_scalar_kernel, scalar_set_layout)
        from repro.cpu import CycleProfiler
        set_a, set_b = generate_set_pair(300, selectivity=0.5, seed=2)
        base_a, base_b, base_c = scalar_set_layout(len(set_a),
                                                   len(set_b))
        dba_1lsu.write_words(base_a, set_a)
        dba_1lsu.write_words(base_b, set_b)
        program = dba_1lsu.load_program(intersection_scalar_kernel())
        profiler = CycleProfiler()
        dba_1lsu.run_profiled(profiler, entry="main", regs={
            "a2": base_a, "a3": base_a + len(set_a) * 4,
            "a4": base_b, "a5": base_b + len(set_b) * 4,
            "a6": base_c})
        candidates = extension_candidates(profiler, program)
        assert candidates, "the core loop must surface as a hotspot"
        assert candidates[0]["share"] > 0.1
        regions = {c["region"] for c in candidates}
        assert "loop" in regions
