"""Tests for the batched query-serving engine."""

import random

import pytest

from repro.db import (And, Eq, In, Or, Query, QueryEngine, Range,
                      Table, signature)


@pytest.fixture(scope="module")
def table():
    rng = random.Random(31)
    n = 600
    table = Table("orders", {
        "status": [rng.randrange(4) for _ in range(n)],
        "region": [rng.randrange(6) for _ in range(n)],
        "price": [rng.randrange(800) for _ in range(n)],
    })
    for column in ("status", "region", "price"):
        table.create_index(column)
    return table


@pytest.fixture(scope="module")
def predicate():
    return (Eq("status", 1) & Range("price", 50, 600)) | Eq("region", 2)


def make_engine(processor, **kwargs):
    kwargs.setdefault("processor", processor)
    return QueryEngine(**kwargs)


class TestSignature:
    def test_structurally_equal_trees_share_signature(self):
        left = And(Eq("a", 1), Range("b", 2, 3))
        right = And(Eq("a", 1), Range("b", 2, 3))
        assert signature(left) == signature(right)

    def test_different_trees_differ(self):
        assert signature(Eq("a", 1)) != signature(Eq("a", 2))
        assert signature(And(Eq("a", 1), Eq("b", 2))) \
            != signature(Or(Eq("a", 1), Eq("b", 2)))
        assert signature(In("a", (1, 2))) != signature(In("a", (2, 1)))


class TestEngine:
    def test_single_query_matches_executor(self, eis_2lsu_partial,
                                           table, predicate):
        engine = make_engine(eis_2lsu_partial)
        result = engine.execute(Query(table, predicate,
                                      order_by="price", limit=10))
        rows, stats = engine.executor.select(
            table, predicate, order_by="price", limit=10)
        assert result.rows == rows
        assert result.stats.cycles == stats.cycles

    def test_cost_model_and_iss_engines_agree(self, eis_2lsu_partial,
                                              table, predicate):
        queries = [Query(table, predicate, order_by="price"),
                   Query(table, Eq("status", 0), limit=5),
                   Query(table, None, order_by="price",
                         descending=True, limit=3)]
        fast = make_engine(eis_2lsu_partial)
        slow = make_engine(eis_2lsu_partial, cost_model=False)
        for fast_result, slow_result in zip(
                fast.execute_batch(queries),
                slow.execute_batch(queries)):
            assert fast_result.rids == slow_result.rids
            assert fast_result.rows == slow_result.rows
            assert fast_result.stats.cycles == slow_result.stats.cycles
        snapshot = fast.metrics_snapshot()
        assert snapshot["db.engine.cycles_iss"] == 0
        assert snapshot["db.engine.cycles_costmodel"] > 0
        slow_snapshot = slow.metrics_snapshot()
        assert slow_snapshot["db.engine.cycles_costmodel"] == 0
        assert slow_snapshot["db.engine.cycles_iss"] > 0

    def test_scan_cache_hits_across_batches(self, eis_2lsu_partial,
                                            table):
        engine = make_engine(eis_2lsu_partial)
        query = Query(table, Eq("status", 1))
        first = engine.execute(query)
        misses = engine.metrics_snapshot()["db.engine.scan_cache.misses"]
        second = engine.execute(Query(table, Eq("status", 1)))
        snapshot = engine.metrics_snapshot()
        assert second.rids == first.rids
        assert snapshot["db.engine.scan_cache.hits"] == 1
        assert snapshot["db.engine.scan_cache.misses"] == misses
        engine.clear_caches()
        engine.execute(query)
        assert engine.metrics_snapshot()[
            "db.engine.scan_cache.misses"] == misses + 1

    def test_cached_scan_results_are_isolated_copies(
            self, eis_2lsu_partial, table):
        engine = make_engine(eis_2lsu_partial)
        first = engine.execute(Query(table, Eq("region", 2)))
        first.rids.append(999999)  # caller mutates its copy
        second = engine.execute(Query(table, Eq("region", 2)))
        assert 999999 not in second.rids

    def test_cse_reuses_identical_subtrees_within_batch(
            self, eis_2lsu_partial, table, predicate):
        engine = make_engine(eis_2lsu_partial)
        results = engine.execute_batch(
            [Query(table, predicate), Query(table, predicate),
             Query(table, predicate)])
        assert results[0].rids == results[1].rids == results[2].rids
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.cse.hits"] == 2
        assert snapshot["db.engine.cycles_saved"] > 0
        # reused queries are not charged the subtree's cycles again
        assert results[1].stats.set_operations == 0

    def test_cse_does_not_leak_across_batches(self, eis_2lsu_partial,
                                              table, predicate):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch([Query(table, predicate)])
        engine.execute_batch([Query(table, predicate)])
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.cse.hits"] == 0

    def test_parallel_batch_matches_serial(self, eis_2lsu_partial,
                                           table, predicate):
        # distinct queries: per-query cycle attribution with CSE
        # depends on in-chunk order, so duplicates are tested elsewhere
        queries = [Query(table, predicate, order_by="price", limit=7),
                   Query(table, Eq("status", 2), order_by="price"),
                   Query(table, Range("price", 10, 300)),
                   Query(table, In("region", (0, 4)), limit=2)]
        engine = make_engine(eis_2lsu_partial)
        serial = engine.execute_batch(queries)
        parallel = engine.execute_batch(queries, workers=2)
        for serial_result, parallel_result in zip(serial, parallel):
            assert parallel_result.rids == serial_result.rids
            assert parallel_result.rows == serial_result.rows
            assert parallel_result.stats.cycles \
                == serial_result.stats.cycles

    def test_missing_index_is_reported(self, eis_2lsu_partial):
        bare = Table("bare", {"a": [1, 2, 3]})
        engine = make_engine(eis_2lsu_partial)
        with pytest.raises(KeyError, match="secondary index"):
            engine.execute(Query(bare, Eq("a", 1)))

    def test_queries_counter_and_qps_gauge(self, eis_2lsu_partial,
                                           table):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch([Query(table, Eq("status", 0)),
                              Query(table, Eq("status", 3))])
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.queries"] == 2
        assert snapshot["db.engine.batches"] == 1
        assert snapshot["db.engine.last_batch_qps"] > 0


class TestWorkerMetricMerge:
    """Worker-pool serving no longer loses its subprocess metrics."""

    def queries(self, table, predicate):
        return [Query(table, predicate, order_by="price", limit=7),
                Query(table, Eq("status", 2), order_by="price"),
                Query(table, Range("price", 10, 300)),
                Query(table, In("region", (0, 4)), limit=2)]

    def test_worker_metrics_namespaced_into_parent(
            self, eis_2lsu_partial, table, predicate):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch(self.queries(table, predicate), workers=2)
        snapshot = engine.metrics_snapshot()
        worker_queries = [snapshot[name] for name in snapshot
                          if name.startswith("db.engine.worker.")
                          and name.endswith(".queries")]
        assert len(worker_queries) == 2
        assert sum(worker_queries) == 4
        # ...without double-counting the parent's own accounting
        assert snapshot["db.engine.queries"] == 4

    def test_worker_cache_economics_roll_up(self, eis_2lsu_partial,
                                            table, predicate):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch(self.queries(table, predicate), workers=2)
        snapshot = engine.metrics_snapshot()
        worker_misses = sum(
            snapshot[name] for name in snapshot
            if name.startswith("db.engine.worker.")
            and name.endswith("scan_cache.misses"))
        assert worker_misses > 0
        # aggregated totals cover the workers' scan-cache traffic
        assert snapshot["db.engine.scan_cache.misses"] == worker_misses

    def test_supervisor_counters_ride_along(self, eis_2lsu_partial,
                                            table, predicate):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch(self.queries(table, predicate), workers=2)
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.supervisor.submitted"] == 2
        assert snapshot["db.engine.supervisor.ok"] == 2
        assert snapshot["db.engine.workers"] == 2

    def test_workers_gauge_resets_between_batches(
            self, eis_2lsu_partial, table, predicate):
        engine = make_engine(eis_2lsu_partial)
        engine.execute_batch(self.queries(table, predicate), workers=2)
        assert engine.metrics_snapshot()["db.engine.queue_depth"] == 0


class TestBenchHarness:
    def test_run_bench_reports_parity(self):
        from repro.db.bench import run_bench
        report = run_bench(rows=120, queries=6, repeat=1)
        assert report["rid_parity"] is True
        assert report["cycle_parity"] is True
        assert report["speedup"] > 0
        assert report["queries"] == 6

    def test_run_bench_traced_pass(self, tmp_path):
        from repro.db.bench import run_bench
        from repro.telemetry.tracer import validate_chrome_trace
        import json
        path = str(tmp_path / "trace.json")
        report = run_bench(rows=120, queries=6, repeat=1,
                           workers=2, trace_out=path)
        assert report["trace"]["processes"] == 3
        validate_chrome_trace(json.load(open(path)))
