"""Tests for the ``repro db top`` dashboard renderer and driver."""

from repro.db.top import render_dashboard, run_top


class TestRenderDashboard:
    def snapshot(self):
        return {
            "db.engine.queries": 64,
            "db.engine.batches": 2,
            "db.engine.last_batch_qps": 123.4,
            "db.engine.queue_depth": 0,
            "db.engine.workers": 2,
            "db.engine.active_workers": 2,
            "db.engine.scan_cache.hits": 6,
            "db.engine.scan_cache.misses": 18,
            "db.engine.cse.hits": 3,
            "db.engine.cycles_saved": 500,
            "db.engine.cycles_iss": 0,
            "db.engine.cycles_costmodel": 9000,
            "db.engine.query_cycles": {"p50": 120, "p95": 500,
                                       "p99": 600},
            "db.engine.worker.0.queries": 32,
            "db.engine.worker.0.scan_cache.hits": 4,
            "db.engine.worker.0.cse.hits": 1,
            "db.engine.worker.1.queries": 32,
            "db.engine.worker.1.scan_cache.hits": 2,
            "db.engine.worker.1.cse.hits": 2,
        }

    def test_renders_key_rows(self):
        text = render_dashboard(self.snapshot(), frame=3, elapsed=1.5)
        assert "frame 3" in text
        assert "queries served" in text and "64" in text
        assert "workers 2/2 (100%)" in text
        assert "25.0%" in text  # 6 hits / 24 lookups
        assert "p50 120" in text and "p99 600" in text

    def test_per_worker_rows_sorted(self):
        text = render_dashboard(self.snapshot())
        first = text.index("worker 0")
        second = text.index("worker 1")
        assert first < second

    def test_no_worker_rows_without_worker_metrics(self):
        snapshot = {name: value for name, value
                    in self.snapshot().items()
                    if not name.startswith("db.engine.worker.")}
        assert "worker 0" not in render_dashboard(snapshot)


class TestRunTop:
    def test_bounded_frames_return_final_snapshot(self, tmp_path):
        frames = []
        snapshot = run_top(rows=100, queries=4, frames=2, interval=0,
                           seed=7, clear=False,
                           metrics_out=str(tmp_path / "m.jsonl"),
                           out=frames.append)
        assert len(frames) == 2
        assert snapshot["db.engine.batches"] == 2
        assert snapshot["db.engine.queries"] == 8

    def test_sleep_injected_between_frames(self):
        naps = []
        run_top(rows=80, queries=2, frames=2, interval=0.5,
                clear=False, out=lambda text: None, sleep=naps.append)
        assert naps == [0.5]
