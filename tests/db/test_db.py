"""Tests for the columnar engine layer (tables, predicates, executor)."""

import random

import pytest

from repro.db import (And, AndNot, Eq, In, Or, QueryExecutor, Range,
                      Table, leaves, validate_indexes)


@pytest.fixture(scope="module")
def table():
    rng = random.Random(11)
    n = 1200
    table = Table("orders", {
        "status": [rng.randrange(4) for _ in range(n)],
        "region": [rng.randrange(6) for _ in range(n)],
        "priority": [rng.randrange(10) for _ in range(n)],
        "amount": [rng.randrange(50_000) for _ in range(n)],
    })
    for column in ("status", "region", "priority"):
        table.create_index(column)
    return table


def ground_truth(table, row_predicate):
    return sorted(rid for rid in range(table.row_count)
                  if row_predicate({name: column[rid] for name, column
                                    in table.columns.items()}))


class TestTable:
    def test_column_lengths_validated(self):
        with pytest.raises(ValueError, match="lengths"):
            Table("bad", {"a": [1, 2], "b": [1]})

    def test_value_range_validated(self):
        with pytest.raises(ValueError, match="32-bit"):
            Table("bad", {"a": [0xFFFFFFFF]})

    def test_fetch_projects_columns(self, table):
        rows = table.fetch([0, 1], ["status"])
        assert set(rows[0]) == {"status"}

    def test_missing_column(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_index_required_before_use(self, table):
        with pytest.raises(KeyError, match="no index"):
            table.index("amount")


class TestSecondaryIndex:
    def test_eq_scan_matches_column(self, table):
        rids = table.index("status").scan_eq(2)
        assert rids == [rid for rid in range(table.row_count)
                        if table.columns["status"][rid] == 2]

    def test_range_scan_inclusive(self, table):
        rids = table.index("priority").scan_range(3, 5)
        expected = [rid for rid in range(table.row_count)
                    if 3 <= table.columns["priority"][rid] <= 5]
        assert rids == expected

    def test_open_ended_ranges(self, table):
        low_only = table.index("priority").scan_range(low=8)
        assert all(table.columns["priority"][rid] >= 8
                   for rid in low_only)
        high_only = table.index("priority").scan_range(high=1)
        assert all(table.columns["priority"][rid] <= 1
                   for rid in high_only)

    def test_in_scan(self, table):
        rids = table.index("region").scan_in([0, 5])
        assert rids == sorted(rids)
        assert all(table.columns["region"][rid] in (0, 5)
                   for rid in rids)

    def test_missing_value(self, table):
        assert table.index("status").scan_eq(99) == []


class TestPredicates:
    def test_operator_sugar(self):
        predicate = (Eq("a", 1) & Range("b", 0, 5)) | In("c", [1])
        assert isinstance(predicate, Or)
        assert isinstance(predicate.left, And)
        assert [leaf.column for leaf in leaves(predicate)] \
            == ["a", "b", "c"]

    def test_validate_indexes(self, table):
        with pytest.raises(KeyError, match="amount"):
            validate_indexes(Eq("amount", 3), table)


@pytest.fixture(scope="module", params=["DBA_2LSU_EIS", "DBA_1LSU"],
                ids=["eis", "scalar"])
def executor(request):
    from repro.configs.catalog import build_processor
    return QueryExecutor(build_processor(request.param))


class TestWhere:
    def test_conjunction(self, table, executor):
        rids, stats = executor.where(table,
                                     Eq("status", 1) & Eq("region", 2))
        expected = ground_truth(
            table, lambda row: row["status"] == 1 and row["region"] == 2)
        assert rids == expected
        assert stats.set_operations == 1
        assert stats.index_scans == 2
        assert stats.cycles > 0

    def test_disjunction(self, table, executor):
        rids, _stats = executor.where(table,
                                      Eq("status", 0) | Eq("status", 3))
        expected = ground_truth(table,
                                lambda row: row["status"] in (0, 3))
        assert rids == expected

    def test_andnot(self, table, executor):
        predicate = AndNot(Range("priority", 5, 9), Eq("region", 1))
        rids, _stats = executor.where(table, predicate)
        expected = ground_truth(
            table, lambda row: 5 <= row["priority"] <= 9
            and row["region"] != 1)
        assert rids == expected

    def test_nested_tree(self, table, executor):
        predicate = (Eq("status", 1) & Range("priority", 5, 9)) \
            | In("region", [2, 3])
        rids, stats = executor.where(table, predicate)
        expected = ground_truth(
            table,
            lambda row: (row["status"] == 1
                         and 5 <= row["priority"] <= 9)
            or row["region"] in (2, 3))
        assert rids == expected
        assert stats.set_operations == 2

    def test_empty_result(self, table, executor):
        rids, _stats = executor.where(table,
                                      Eq("status", 1) & Eq("status", 2))
        assert rids == []


class TestOrderByAndSelect:
    def test_order_by_sorts_by_key(self, table, executor):
        rids, stats = executor.order_by(
            table, list(range(table.row_count)), "amount")
        amounts = [table.columns["amount"][rid] for rid in rids]
        assert amounts == sorted(amounts)
        assert stats.sort_operations == 1

    def test_order_by_descending(self, table, executor):
        rids, _stats = executor.order_by(table, [0, 1, 2, 3, 4],
                                         "amount", descending=True)
        amounts = [table.columns["amount"][rid] for rid in rids]
        assert amounts == sorted(amounts, reverse=True)

    def test_full_select(self, table, executor):
        rows, stats = executor.select(
            table, predicate=Eq("status", 2), order_by="amount",
            limit=10, columns=["amount", "status"])
        assert len(rows) <= 10
        amounts = [row["amount"] for row in rows]
        assert amounts == sorted(amounts)
        assert all(row["status"] == 2 for row in rows)
        assert stats.index_scans == 1

    def test_select_without_predicate(self, table, executor):
        rows, _stats = executor.select(table, order_by="amount",
                                       limit=3)
        assert len(rows) == 3

    def test_order_by_key_width_guard(self, executor):
        wide = Table("wide", {"key": [1 << 20]})
        with pytest.raises(ValueError, match="dictionary"):
            executor.order_by(wide, [0], "key")

    def test_order_by_row_count_guard(self, executor):
        big = Table("big", {"key": [0] * 5000})
        with pytest.raises(ValueError, match="4096"):
            executor.order_by(big, list(range(5000)), "key")

    def test_empty_rid_list(self, table, executor):
        rids, stats = executor.order_by(table, [], "amount")
        assert rids == []
        assert stats.cycles == 0


class TestEisScalarAgreement:
    def test_both_executors_agree(self, table):
        from repro.configs.catalog import build_processor
        eis = QueryExecutor(build_processor("DBA_2LSU_EIS"))
        scalar = QueryExecutor(build_processor("DBA_1LSU"))
        predicate = (Range("priority", 2, 7) & Eq("region", 4)) \
            | Eq("status", 0)
        eis_rids, eis_stats = eis.where(table, predicate)
        scalar_rids, scalar_stats = scalar.where(table, predicate)
        assert eis_rids == scalar_rids
        assert eis_stats.cycles < scalar_stats.cycles  # acceleration
