"""Query-plan verification (PLAN001..PLAN009)."""

import warnings

import pytest

from repro.db import And, Eq, In, Or, Query, QueryEngine, Range, Table
from repro.db.planlint import (PlanError, lint_query,
                               lint_query_or_raise)
from repro.db.predicates import AndNot


@pytest.fixture(scope="module")
def table():
    table = Table("orders", {
        "status": [1, 2, 3, 0],
        "price": [10, 20, 30, 40],
    })
    table.create_index("status")
    table.create_index("price")
    return table


def plan_codes(query, engine=None):
    return {d.code for d in lint_query(query, engine=engine)}


class TestPlanChecks:
    def test_valid_query_is_clean(self, table):
        query = Query(table, Eq("status", 1) & Range("price", 5, 35),
                      order_by="price", limit=2)
        assert plan_codes(query) == set()

    def test_plan001_unknown_column(self, table):
        assert "PLAN001" in plan_codes(Query(table, Eq("ghost", 1)))
        assert "PLAN001" in plan_codes(Query(table, order_by="ghost"))
        assert "PLAN001" in plan_codes(
            Query(table, columns=["status", "ghost"]))

    def test_plan002_missing_index(self):
        bare = Table("bare", {"a": [1, 2, 3]})
        report = lint_query(Query(bare, Eq("a", 1)))
        found = report.by_code("PLAN002")
        assert len(found) == 1
        assert "secondary index" in found[0].message

    def test_plan003_provably_empty_leaves(self, table):
        assert "PLAN003" in plan_codes(
            Query(table, Range("price", 30, 10)))
        assert "PLAN003" in plan_codes(Query(table, In("price", ())))
        assert "PLAN003" in plan_codes(
            Query(table, Eq("price", 0xFFFFFFFF)))

    def test_plan004_unsatisfiable_conjunction(self, table):
        query = Query(table, And(Range("price", 0, 10),
                                 Range("price", 20, 30)))
        assert "PLAN004" in plan_codes(query)
        # The same ranges OR'd are satisfiable.
        query = Query(table, Or(Range("price", 0, 10),
                                Range("price", 20, 30)))
        assert "PLAN004" not in plan_codes(query)

    def test_plan004_disjoint_eq_and_in(self, table):
        query = Query(table, And(Eq("status", 1),
                                 In("status", (2, 3))))
        assert "PLAN004" in plan_codes(query)

    def test_plan004_andnot_self_cancellation(self, table):
        query = Query(table, AndNot(Eq("status", 1), Eq("status", 1)))
        assert "PLAN004" in plan_codes(query)

    def test_plan005_trivially_true_range(self, table):
        assert "PLAN005" in plan_codes(
            Query(table, Range("price", None, None)))

    def test_plan006_duplicate_subtree(self, table):
        query = Query(table, Or(Eq("status", 1), Eq("status", 1)))
        assert "PLAN006" in plan_codes(query)

    def test_plan007_order_by_beyond_rid_budget(self):
        big = Table("big", {"a": list(range(5000))})
        big.create_index("a")
        query = Query(big, Eq("a", 1), order_by="a")
        assert "PLAN007" in plan_codes(query)

    def test_plan009_non_positive_limit(self, table):
        assert "PLAN009" in plan_codes(
            Query(table, Eq("status", 1), limit=0))


class TestEnforcement:
    def test_errors_raise_plan_error(self, table):
        with pytest.raises(PlanError):
            lint_query_or_raise(Query(table, Eq("ghost", 1)))

    def test_plan_error_is_a_readable_key_error(self):
        bare = Table("bare", {"a": [1]})
        with pytest.raises(KeyError, match="secondary index"):
            lint_query_or_raise(Query(bare, Eq("a", 1)))

    def test_warnings_do_not_raise(self, table):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            lint_query_or_raise(Query(table, Range("price", 30, 10)))
        assert any("PLAN003" in str(w.message) for w in caught)

    def test_warn_only_escape_hatch(self, table, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_WARN_ONLY", "1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            lint_query_or_raise(Query(table, Eq("ghost", 1)))
        assert any("PLAN001" in str(w.message) for w in caught)


class TestEngineAdmission:
    def test_engine_rejects_unknown_column(self, eis_2lsu_partial,
                                           table):
        engine = QueryEngine(processor=eis_2lsu_partial)
        with pytest.raises(PlanError):
            engine.execute(Query(table, Eq("ghost", 1)))

    def test_engine_rejects_in_batch_worker_path(self,
                                                 eis_2lsu_partial,
                                                 table):
        engine = QueryEngine(processor=eis_2lsu_partial)
        with pytest.raises(PlanError):
            engine.execute_batch([Query(table, Eq("status", 1)),
                                  Query(table, Eq("ghost", 1))])

    def test_engine_admits_clean_queries(self, eis_2lsu_partial,
                                         table):
        engine = QueryEngine(processor=eis_2lsu_partial)
        result = engine.execute(Query(table, Eq("status", 1)))
        assert result.rows

    def test_demo_queries_have_no_warnings(self):
        from repro.db.bench import build_demo_table, demo_queries
        demo = build_demo_table()
        for query in demo_queries(demo):
            report = lint_query(query)
            assert len(report.at_least("warning")) == 0, report.format()
