"""Sharded-engine parity and partitioning unit tests.

The contract under test is ISSUE 8's acceptance bar: a
:class:`~repro.db.shard.ShardedEngine` must return byte-identical RID
lists (and row payloads) to a single :class:`~repro.db.engine.
QueryEngine` for every builtin predicate shape, under every
partitioner kind and both reduce paths (calibrated cost model and pure
ISS).  Edge cases — an empty shard, all rows landing on one shard,
more shards than rows — must degrade to the same answer, and sound
pruning must only ever *skip* work, never change it.
"""

import random

import pytest

from repro.db import (And, AndNot, Eq, HashPartitioner, In, Or, Query,
                      QueryEngine, Range, RangePartitioner, ShardedEngine,
                      Table, make_partitioner, partition_table,
                      shard_may_match, skew_ratio)

ROWS = 360

#: Every builtin predicate node type, alone and composed.
TREE_SHAPES = [
    Eq("kind", 2),
    Range("score", 50, 400),
    In("zone", (1, 3, 6)),
    And(Eq("kind", 1), Range("score", 50, 400)),
    Or(Eq("zone", 3), Eq("zone", 5)),
    AndNot(Range("score", 0, 350), Eq("kind", 0)),
    And(Or(Eq("kind", 1), Eq("kind", 2)),
        AndNot(Range("score", 100, 450), In("zone", (1, 2, 6)))),
    Or(And(Eq("kind", 3), Eq("zone", 0)),
       Or(Range("score", 440, 499), In("kind", (0, 4)))),
]


def build_table(rows=ROWS, seed=47, name="events"):
    rng = random.Random(seed)
    table = Table(name, {
        "kind": [rng.randrange(5) for _ in range(rows)],
        "zone": [rng.randrange(7) for _ in range(rows)],
        "score": [rng.randrange(500) for _ in range(rows)],
    })
    for column in ("kind", "zone", "score"):
        table.create_index(column)
    return table


@pytest.fixture(scope="module")
def table():
    return build_table()


@pytest.fixture(scope="module")
def reference(table):
    """Single-engine answers for every tree shape (the ground truth)."""
    engine = QueryEngine()
    results = engine.execute_batch(
        [Query(table, shape) for shape in TREE_SHAPES])
    return [(result.rids, result.rows) for result in results]


class TestShardedParity:
    """Every shape x {hash, range} x {cost model, ISS} is identical."""

    @pytest.mark.parametrize("partitioner", ("hash", "range"))
    @pytest.mark.parametrize("cost_model", (True, False),
                             ids=("costmodel", "iss"))
    def test_batch_parity(self, table, reference, partitioner,
                          cost_model):
        engine = ShardedEngine(shards=3, partitioner=partitioner,
                               cost_model=cost_model)
        results = engine.execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES])
        for result, (rids, rows) in zip(results, reference):
            assert result.rids == rids
            assert result.rows == rows

    @pytest.mark.parametrize("column", (None, "score"))
    def test_range_partition_column_parity(self, table, reference,
                                           column):
        engine = ShardedEngine(shards=4, partitioner="range",
                               partition_column=column)
        results = engine.execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES])
        assert [r.rids for r in results] == [rids for rids, _ in
                                             reference]

    def test_order_by_and_limit_parity(self, table):
        query = Query(table, And(Eq("kind", 1), Range("score", 0, 480)),
                      order_by="score", limit=10)
        single = QueryEngine().execute(query)
        sharded = ShardedEngine(shards=3).execute(
            Query(table, query.predicate, order_by="score", limit=10))
        assert sharded.rids == single.rids
        assert sharded.rows == single.rows

    def test_no_predicate_full_scan_parity(self, table):
        single = QueryEngine().execute(Query(table, None, limit=20))
        sharded = ShardedEngine(shards=3).execute(
            Query(table, None, limit=20))
        assert sharded.rids == single.rids

    def test_workers_mode_parity(self, table, reference):
        engine = ShardedEngine(shards=2)
        try:
            results = engine.execute_batch(
                [Query(table, shape) for shape in TREE_SHAPES],
                workers=2)
        finally:
            engine.shutdown()
        assert [r.rids for r in results] == [rids for rids, _ in
                                             reference]

    def test_makespan_never_exceeds_serial(self, table):
        """Per-query makespan = max shard + gather <= some work bound.

        The modeled makespan must be positive and composed of exactly
        the accounted parts.
        """
        engine = ShardedEngine(shards=3)
        result = engine.execute(
            Query(table, And(Eq("kind", 1), Range("score", 50, 400)),
                  order_by="score"))
        parts = (max(result.shard_cycles) + result.gather_cycles
                 + result.transfer_cycles)
        assert result.makespan_cycles >= parts
        assert result.makespan_cycles > 0


class TestEdgeCases:
    def test_empty_shard(self):
        """A shard that holds zero rows still reduces correctly."""
        table = build_table(rows=5, seed=3, name="tiny")
        engine = ShardedEngine(shards=4, partitioner="range")
        result = engine.execute(Query(table, Range("score", 0, 499)))
        single = QueryEngine().execute(
            Query(table, Range("score", 0, 499)))
        assert result.rids == single.rids

    def test_all_rows_one_shard(self):
        """Hash partitioning on a constant column pins every row."""
        rows = 60
        rng = random.Random(9)
        table = Table("const", {
            "kind": [1] * rows,
            "score": [rng.randrange(100) for _ in range(rows)],
        })
        table.create_index("kind")
        table.create_index("score")
        engine = ShardedEngine(shards=4, partitioner="hash",
                               partition_column="kind")
        result = engine.execute(
            Query(table, And(Eq("kind", 1), Range("score", 10, 80))))
        single = QueryEngine().execute(
            Query(table, And(Eq("kind", 1), Range("score", 10, 80))))
        assert result.rids == single.rids
        sizes = [shard.row_count for shard
                 in engine.shards_for(table)]
        assert sorted(sizes) == [0, 0, 0, rows]

    def test_more_shards_than_rows(self):
        table = build_table(rows=3, seed=11, name="micro")
        engine = ShardedEngine(shards=8)
        result = engine.execute(Query(table, Range("score", 0, 499)))
        single = QueryEngine().execute(
            Query(table, Range("score", 0, 499)))
        assert result.rids == single.rids

    def test_empty_result(self, table):
        engine = ShardedEngine(shards=3)
        result = engine.execute(Query(table, Eq("kind", 99)))
        assert result.rids == []
        assert result.rows == []

    def test_single_shard_degenerates(self, table):
        engine = ShardedEngine(shards=1)
        results = engine.execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES])
        single = QueryEngine().execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES])
        assert [r.rids for r in results] == [r.rids for r in single]


class TestPruning:
    def test_skipped_counter_range_partition(self):
        """A narrow range over a range-partitioned column skips shards."""
        rows = 400
        table = Table("ordered", {
            "key": list(range(rows)),
            "flag": [rid % 2 for rid in range(rows)],
        })
        table.create_index("key")
        table.create_index("flag")
        engine = ShardedEngine(shards=4, partitioner="range",
                               partition_column="key")
        result = engine.execute(
            Query(table, And(Range("key", 0, 40), Eq("flag", 0))))
        single = QueryEngine().execute(
            Query(table, And(Range("key", 0, 40), Eq("flag", 0))))
        assert result.rids == single.rids
        assert result.skipped_shards == 3
        assert engine.metrics_snapshot()["db.shard.skipped"] == 3

    def test_pruning_never_changes_results(self, table, reference):
        engine = ShardedEngine(shards=6, partitioner="range",
                               partition_column="score")
        results = engine.execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES])
        assert [r.rids for r in results] == [rids for rids, _ in
                                             reference]

    def test_shard_may_match_soundness(self, table):
        """If may-match says no, the shard truly has zero matches."""
        partitioner = RangePartitioner(3, column="score")
        shards = partition_table(table, partitioner)
        engine = QueryEngine()
        for shape in TREE_SHAPES:
            for shard in shards:
                if not shard_may_match(shard.table, shape):
                    rids, _ = engine.evaluate_predicate(shard.table,
                                                        shape)
                    assert rids == []


class TestPartitioners:
    def test_partitions_are_exhaustive_and_disjoint(self, table):
        for kind in ("hash", "range"):
            partitioner = make_partitioner(kind, 5)
            shards = partition_table(table, partitioner)
            seen = sorted(rid for shard in shards
                          for rid in shard.global_rids)
            assert seen == list(range(table.row_count))

    def test_global_rids_ascending(self, table):
        for shard in partition_table(table, HashPartitioner(4)):
            assert shard.global_rids \
                == sorted(shard.global_rids)

    def test_hash_partition_balance(self):
        table = build_table(rows=2000, seed=5, name="big")
        shards = partition_table(table, HashPartitioner(4))
        sizes = [shard.row_count for shard in shards]
        assert skew_ratio(sizes) < 1.25

    def test_range_partition_by_column_orders_values(self, table):
        shards = partition_table(
            table, RangePartitioner(3, column="score"))
        maxima = [max(shard.table.column("score"))
                  for shard in shards if shard.row_count]
        minima = [min(shard.table.column("score"))
                  for shard in shards if shard.row_count]
        for upper, lower in zip(maxima, minima[1:]):
            assert upper <= lower

    def test_make_partitioner_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_partitioner("round-robin", 4)

    def test_skew_ratio(self):
        assert skew_ratio([10, 10, 10, 10]) == 1.0
        assert skew_ratio([40, 0, 0, 0]) == 4.0
        assert skew_ratio([]) == 1.0


class TestPartitionedOrderBy:
    """Per-shard sort + EIS merge equals the coordinator serial sort."""

    def queries(self, table):
        return [
            Query(table, Range("score", 0, 480), order_by="score",
                  limit=12),
            Query(table, Eq("kind", 1), order_by="score",
                  descending=True),
            Query(table, Or(Eq("zone", 3), Eq("zone", 5)),
                  order_by="score", descending=True, limit=5),
            Query(table, None, order_by="score", limit=25),
        ]

    def test_matches_serial_sort_and_single_engine(self, table):
        queries = self.queries(table)
        single = QueryEngine().execute_batch(queries)
        partitioned = ShardedEngine(shards=3).execute_batch(queries)
        serial = ShardedEngine(
            shards=3, partitioned_order_by=False).execute_batch(queries)
        for fast, slow, ref in zip(partitioned, serial, single):
            assert fast.rids == ref.rids
            assert slow.rids == ref.rids
            assert fast.rows == ref.rows

    def test_sort_merge_telemetry(self, table):
        engine = ShardedEngine(shards=3)
        engine.execute(Query(table, Range("score", 0, 480),
                             order_by="score"))
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.shard.sort.merges"] > 0
        assert snapshot["db.shard.sort.merge_cycles"] > 0

    def test_sort_cycles_land_on_shards(self, table):
        """Partitioned sorts bill the shards, not the serial tail."""
        query = Query(table, Range("score", 0, 480), order_by="score")
        partitioned = ShardedEngine(shards=3).execute(query)
        serial = ShardedEngine(
            shards=3, partitioned_order_by=False).execute(query)
        assert sum(partitioned.shard_cycles) > sum(serial.shard_cycles)
        assert partitioned.rids == serial.rids


class TestShardCache:
    """Cross-batch per-shard WHERE cache: hits, parity, chaos opt-out."""

    def test_repeat_batch_hits_with_identical_results(self, table,
                                                      reference):
        engine = ShardedEngine(shards=3)
        queries = [Query(table, shape) for shape in TREE_SHAPES]
        first = engine.execute_batch(queries)
        second = engine.execute_batch(queries)
        expected = [rids for rids, _ in reference]
        assert [r.rids for r in first] == expected
        assert [r.rids for r in second] == expected
        snapshot = engine.metrics_snapshot()
        hits = sum(snapshot["db.shard.%d.cache.hits" % position]
                   for position in range(3))
        misses = sum(snapshot["db.shard.%d.cache.misses" % position]
                     for position in range(3))
        assert hits > 0
        assert misses > 0

    def test_clear_caches_forgets_entries(self, table):
        engine = ShardedEngine(shards=2)
        query = Query(table, Eq("kind", 2))
        engine.execute(query)
        engine.clear_caches()
        engine.execute(Query(table, Eq("kind", 2)))
        snapshot = engine.metrics_snapshot()
        hits = sum(snapshot["db.shard.%d.cache.hits" % position]
                   for position in range(2))
        assert hits == 0

    def test_cache_disabled_under_fault_injection(self, table):
        from repro.faults.db import DbFaultInjector
        from repro.faults.plan import FaultPlan
        engine = ShardedEngine(shards=3, strict=False,
                               fault_injector=DbFaultInjector(
                                   FaultPlan([])))
        queries = [Query(table, shape) for shape in TREE_SHAPES[:3]]
        first = engine.execute_batch(queries)
        second = engine.execute_batch(queries)
        assert [r.rids for r in first] == [r.rids for r in second]
        snapshot = engine.metrics_snapshot()
        for position in range(3):
            assert snapshot["db.shard.%d.cache.hits" % position] == 0
            assert snapshot["db.shard.%d.cache.misses" % position] == 0


class TestRouters:
    """Frozen routing closures agree with assign() on existing rows."""

    PARTITIONER_FACTORIES = (
        lambda: HashPartitioner(4),
        lambda: HashPartitioner(4, column="zone"),
        lambda: RangePartitioner(4),
        lambda: RangePartitioner(4, column="score"),
    )

    def test_router_matches_assignment(self, table):
        columns = {name: table.column(name)
                   for name in ("kind", "zone", "score")}
        for factory in self.PARTITIONER_FACTORIES:
            partitioner = factory()
            shards = partition_table(table, partitioner)
            router = partitioner.router(table)
            for position, shard in enumerate(shards):
                for rid in shard.global_rids:
                    row = {name: values[rid]
                           for name, values in columns.items()}
                    assert router(rid, row) == position, \
                        partitioner.describe()

    def test_range_rid_router_sends_new_rids_to_last_shard(self,
                                                           table):
        partitioner = RangePartitioner(3)
        partition_table(table, partitioner)
        router = partitioner.router(table)
        assert router(table.row_count + 1000, {}) == 2

    def test_range_value_router_is_frozen(self, table):
        """The value router keeps its quantile bounds even if asked
        about values outside the original distribution."""
        partitioner = RangePartitioner(3, column="score")
        partition_table(table, partitioner)
        router = partitioner.router(table)
        assert router(10 ** 6, {"score": 0}) == 0
        assert router(10 ** 6, {"score": 499}) == 2


class TestTelemetry:
    def test_shard_metrics_present(self, table):
        engine = ShardedEngine(shards=2)
        engine.execute_batch(
            [Query(table, shape) for shape in TREE_SHAPES[:3]])
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.shard.queries"] == 3
        assert snapshot["db.shard.shards"] == 2
        assert snapshot["db.shard.makespan_cycles"] > 0
        assert snapshot["db.shard.gather.merges"] > 0
        for index in range(2):
            assert "db.shard.%d.cycles" % index in snapshot
            assert snapshot["db.shard.%d.rows_held" % index] > 0

    def test_makespan_beats_serial_on_fanout(self):
        """On a conjunctive workload the reduce must model a win."""
        table = build_table(rows=4096, seed=13, name="wide")
        queries = [Query(table, And(And(Eq("kind", k),
                                        In("zone", (k, k + 1))),
                                    Range("score", 200, 260)))
                   for k in range(5)]
        single = QueryEngine().execute_batch(queries)
        serial = sum(r.stats.cycles for r in single)
        engine = ShardedEngine(shards=4)
        results = engine.execute_batch(queries)
        makespan = sum(r.makespan_cycles for r in results)
        assert [r.rids for r in results] == [r.rids for r in single]
        assert makespan < serial
