"""Columnar storage differential suite.

The contract under test is ISSUE 10's acceptance bar: the columnar
struct-of-arrays layer must be *byte-identical* to the row-oriented
reference — same RID lists for every predicate shape, sharded and
unsharded, under the cost model and pure ISS — while its delta path
(incremental index merges, delta-aware scan caches, standing queries)
stays equivalent to rebuilding everything from scratch after every
batch, including ghost annihilation and compaction crossings.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.db import (ColumnarIndex, ColumnarTable, DeltaBatch, Eq, In,
                      Or, Query, QueryEngine, Range, ShardedEngine,
                      Table, delta_mask, signature, signature_affected)
from repro.workloads.sets import generate_delta_stream

#: Column domains shared by every table in this suite.
COLUMNS = {"status": 4, "region": 8, "price": 600}

#: Every builtin predicate node type, alone and composed.
SHAPES = [
    Eq("status", 1),
    Range("price", 100, 400),
    In("region", (1, 3, 5)),
    Eq("status", 2) & Range("price", 50, 500),
    Eq("status", 0) | Eq("region", 4),
    (Eq("status", 1) & Range("price", 0, 300)) - In("region", (2, 6)),
    (Range("price", 100, 500) | Eq("status", 3))
    & In("region", (0, 1, 2, 3)),
]


def make_columns(rows, seed):
    rng = random.Random(seed)
    return {name: [rng.randrange(cardinality) for _ in range(rows)]
            for name, cardinality in COLUMNS.items()}


def indexed(table):
    for name in COLUMNS:
        table.create_index(name)
    return table


def build_pair(rows=400, seed=11):
    columns = make_columns(rows, seed)
    return (indexed(Table("orders", columns)),
            indexed(ColumnarTable("orders", columns)))


def rebuilt_copy(table):
    """A from-scratch columnar table with the same live rows and the
    same (sparse) global RIDs — the delta path's ground truth."""
    live = {name: table.column(name) for name in COLUMNS}
    return indexed(ColumnarTable(table.name, live,
                                 rids=table.all_rids()))


def queries_for(table):
    return [Query(table, shape) for shape in SHAPES] + [
        Query(table, SHAPES[3], order_by="price", limit=10),
        Query(table, SHAPES[1], order_by="price", descending=True,
              limit=7),
        Query(table, None, order_by="price", limit=15),
    ]


@pytest.fixture(scope="module")
def delta_stream():
    return generate_delta_stream(
        300, 10, COLUMNS, inserts_per_batch=40, deletes_per_batch=25,
        seed=5, ghost_batches=(2, 7))


class TestDeltaBatch:
    def test_rejects_ragged_inserts(self):
        with pytest.raises(ValueError, match="lengths differ"):
            DeltaBatch(inserts={"a": [1, 2], "b": [3]})

    def test_rejects_duplicate_deletes(self):
        with pytest.raises(ValueError, match="Z-set"):
            DeltaBatch(delete_rids=[4, 4])

    def test_rejects_unsorted_insert_rids(self):
        with pytest.raises(ValueError, match="ascending"):
            DeltaBatch(inserts={"a": [1, 2]}, insert_rids=[9, 3])

    def test_from_spec_roundtrip(self):
        batch = DeltaBatch.from_spec(
            {"insert": {"a": [7]}, "delete_rids": [2]})
        assert batch.insert_count == 1
        assert batch.delete_rids == [2]


class TestIndexScanParity:
    """ColumnarIndex answers == SecondaryIndex answers, all probes."""

    @pytest.fixture(scope="class")
    def pair(self):
        return build_pair()

    def test_scan_eq(self, pair):
        row_table, col_table = pair
        for value in range(-1, COLUMNS["status"] + 1):
            assert col_table.index("status").scan_eq(value) \
                == row_table.index("status").scan_eq(value)

    def test_scan_range(self, pair):
        row_table, col_table = pair
        probes = [(0, 599), (100, 400), (None, 250), (250, None),
                  (None, None), (400, 100), (598, 598)]
        for low, high in probes:
            assert col_table.index("price").scan_range(low, high) \
                == row_table.index("price").scan_range(low, high)

    def test_scan_in_with_duplicate_probes(self, pair):
        row_table, col_table = pair
        for probe in [(1, 3, 5), (5, 3, 1), (2, 2), (), (9, 11)]:
            assert col_table.index("region").scan_in(probe) \
                == row_table.index("region").scan_in(probe)

    def test_counts_and_distinct(self, pair):
        row_table, col_table = pair
        for value in range(COLUMNS["status"]):
            assert col_table.index("status").count_eq(value) \
                == row_table.index("status").count_eq(value)
        assert col_table.index("price").count_range(100, 400) \
            == row_table.index("price").count_range(100, 400)
        assert col_table.index("region").distinct_values() \
            == row_table.index("region").distinct_values()

    def test_fetch_parity(self, pair):
        row_table, col_table = pair
        rids = [0, 5, 17, 399]
        assert col_table.fetch(rids) == row_table.fetch(rids)
        assert col_table.fetch([], ["price"]) == []

    def test_fetch_dead_rid_raises(self, pair):
        _row_table, col_table = pair
        with pytest.raises(KeyError, match="no live row"):
            col_table.fetch([10 ** 6])


class TestEngineParity:
    """Full engine byte-parity: RIDs, rows and modeled cycles."""

    @pytest.mark.parametrize("cost_model", (True, False),
                             ids=("costmodel", "iss"))
    def test_unsharded(self, eis_2lsu_partial, cost_model):
        row_table, col_table = build_pair()
        row_engine = QueryEngine(processor=eis_2lsu_partial,
                                 cost_model=cost_model)
        col_engine = QueryEngine(processor=eis_2lsu_partial,
                                 cost_model=cost_model)
        row_results = row_engine.execute_batch(queries_for(row_table))
        col_results = col_engine.execute_batch(queries_for(col_table))
        for col_result, row_result in zip(col_results, row_results):
            assert col_result.rids == row_result.rids
            assert col_result.rows == row_result.rows
            assert col_result.stats.cycles == row_result.stats.cycles

    @pytest.mark.parametrize("partitioner,column",
                             [("hash", None), ("hash", "status"),
                              ("range", "price")])
    def test_sharded(self, partitioner, column):
        row_table, col_table = build_pair(rows=240, seed=23)
        reference = QueryEngine().execute_batch(queries_for(row_table))
        engine = ShardedEngine(shards=3, partitioner=partitioner,
                               partition_column=column)
        results = engine.execute_batch(queries_for(col_table))
        for result, expected in zip(results, reference):
            assert result.rids == expected.rids
            assert result.rows == expected.rows

    def test_workers_mode_on_sparse_rid_space(self, delta_stream):
        """Worker subprocesses must serve the sparse RID space."""
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        for spec in specs[:4]:
            table.apply_delta(DeltaBatch.from_spec(spec))
        engine = QueryEngine()
        serial = engine.execute_batch(queries_for(table))
        parallel = engine.execute_batch(queries_for(table), workers=2)
        for one, other in zip(parallel, serial):
            assert one.rids == other.rids
            assert one.rows == other.rows


class TestDeltaEquivalence:
    """Incremental maintenance == rebuild-from-scratch, every batch."""

    def test_stream_matches_rebuild_and_row_reference(
            self, eis_2lsu_partial, delta_stream):
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        engine = QueryEngine(processor=eis_2lsu_partial)
        for spec in specs:
            engine.apply_delta(table, DeltaBatch.from_spec(spec))
            fresh = rebuilt_copy(table)
            fresh_engine = QueryEngine(processor=eis_2lsu_partial)
            results = engine.execute_batch(queries_for(table))
            expected = fresh_engine.execute_batch(queries_for(fresh))
            for result, reference in zip(results, expected):
                assert result.rids == reference.rids
                assert result.rows == reference.rows
            # Row-oriented reference: position -> global RID is a
            # monotonic map, so sorted lists correspond elementwise.
            row_table = indexed(Table("orders", {
                name: table.column(name) for name in COLUMNS}))
            to_global = table.all_rids()
            row_results = QueryEngine(
                processor=eis_2lsu_partial).execute_batch(
                    queries_for(row_table))
            for result, reference in zip(results, row_results):
                assert result.rids == [to_global[rid]
                                       for rid in reference.rids]
        assert table.rid_limit() == 300 + 10 * 40
        assert table.index("price").delta_merges > 0

    def test_ghost_rows_never_observable(self):
        table = indexed(ColumnarTable("t", make_columns(50, 3)))
        before = table.all_rids()
        batch = DeltaBatch(
            inserts={"status": [1, 2], "region": [0, 1],
                     "price": [10, 20]},
            delete_rids=[50, 51])
        outcome = table.apply_delta(batch)
        assert outcome["annihilated"] == 2
        assert len(outcome["insert_rids"]) == 0
        assert len(outcome["deleted_rids"]) == 0
        assert table.all_rids() == before
        # ...but the annihilated rows still consumed RID space.
        assert table.rid_limit() == 52
        assert table.index("status").scan_eq(1) == [
            rid for rid in before
            if table.fetch([rid])[0]["status"] == 1]

    def test_compaction_preserves_rids_and_results(self):
        table = indexed(ColumnarTable("t", make_columns(80, 9),
                                      compact_threshold=0.2))
        rng = random.Random(17)
        live = list(range(80))
        while len(live) > 30:
            victims = sorted(rng.sample(live, 10))
            table.apply_delta(DeltaBatch(delete_rids=victims))
            live = [rid for rid in live if rid not in set(victims)]
            assert table.all_rids() == live
            fresh = rebuilt_copy(table)
            for shape in SHAPES:
                column = shape.column if hasattr(shape, "column") \
                    else "price"
                assert table.index(column).scan_range(0, 599) \
                    == fresh.index(column).scan_range(0, 599)
        assert table.compactions > 0

    def test_delete_of_missing_rid_raises(self):
        table = indexed(ColumnarTable("t", make_columns(10, 1)))
        table.apply_delta(DeltaBatch(delete_rids=[4]))
        with pytest.raises(KeyError, match="no live row"):
            table.apply_delta(DeltaBatch(delete_rids=[4]))

    def test_partial_row_insert_rejected(self):
        table = indexed(ColumnarTable("t", make_columns(10, 1)))
        with pytest.raises(ValueError, match="full rows"):
            table.apply_delta(DeltaBatch(inserts={"status": [1]}))


class TestScanCacheUnderDeltas:
    """The delta-aware scan cache is never stale, yet still hits."""

    def test_differential_never_stale(self, eis_2lsu_partial,
                                      delta_stream):
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        engine = QueryEngine(processor=eis_2lsu_partial)
        queries = [Query(table, shape) for shape in SHAPES]
        for spec in specs:
            engine.execute_batch(queries)  # warm / re-warm the cache
            engine.apply_delta(table, DeltaBatch.from_spec(spec))
            results = engine.execute_batch(queries)
            expected = QueryEngine(
                processor=eis_2lsu_partial).execute_batch(queries)
            assert [r.rids for r in results] \
                == [r.rids for r in expected]
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.scan_cache.hits"] > 0
        assert snapshot["db.engine.scan_cache.invalidated"] > 0
        assert snapshot["db.engine.deltas"] == len(specs)
        assert snapshot["db.engine.delta_rows"] > 0

    def test_untouched_entries_survive(self, eis_2lsu_partial):
        table = indexed(ColumnarTable("t", {
            "status": [0, 1, 2, 3], "region": [0, 1, 2, 3],
            "price": [10, 20, 30, 40]}))
        engine = QueryEngine(processor=eis_2lsu_partial)
        hot = Query(table, Eq("status", 0))
        cold = Query(table, Eq("status", 3))
        engine.execute_batch([hot, cold])
        outcome = engine.apply_delta(table, DeltaBatch(
            inserts={"status": [0], "region": [5], "price": [50]}))
        assert outcome["invalidated"] == 1
        hits_before = engine.metrics_snapshot()[
            "db.engine.scan_cache.hits"]
        results = engine.execute_batch([hot, cold])
        assert results[0].rids == [0, 4]
        assert results[1].rids == [3]
        assert engine.metrics_snapshot()["db.engine.scan_cache.hits"] \
            == hits_before + 1

    def test_row_table_is_not_delta_capable(self, eis_2lsu_partial):
        table = indexed(Table("t", make_columns(10, 2)))
        engine = QueryEngine(processor=eis_2lsu_partial)
        with pytest.raises(TypeError, match="delta-capable"):
            engine.apply_delta(table, DeltaBatch(delete_rids=[1]))


class TestStandingQueries:
    def test_standing_tracks_full_reevaluation(self, eis_2lsu_partial,
                                               delta_stream):
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        engine = QueryEngine(processor=eis_2lsu_partial)
        standings = [engine.register_standing(Query(table, shape))
                     for shape in SHAPES]
        for spec in specs:
            outcome = engine.apply_delta(table,
                                         DeltaBatch.from_spec(spec))
            assert len(outcome["updates"]) == len(standings)
            fresh_engine = QueryEngine(processor=eis_2lsu_partial)
            for standing, shape in zip(standings, SHAPES):
                expected, _stats = fresh_engine.evaluate_predicate(
                    table, shape)
                assert standing.rids == expected
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.engine.standing.registered"] == len(SHAPES)
        assert snapshot["db.engine.standing.updates"] > 0

    def test_updates_are_output_deltas(self, eis_2lsu_partial):
        table = indexed(ColumnarTable("t", {
            "status": [0, 0, 1], "region": [0, 1, 2],
            "price": [5, 6, 7]}))
        engine = QueryEngine(processor=eis_2lsu_partial)
        standing = engine.register_standing(
            Query(table, Eq("status", 0)))
        assert standing.rids == [0, 1]
        outcome = engine.apply_delta(table, DeltaBatch(
            inserts={"status": [0, 1], "region": [3, 4],
                     "price": [8, 9]},
            delete_rids=[0]))
        update = outcome["updates"][0]
        assert update.added == [3]
        assert update.removed == [0]
        assert standing.rids == [1, 3]

    def test_rejects_non_where_shapes(self, eis_2lsu_partial):
        table = indexed(ColumnarTable("t", make_columns(10, 4)))
        engine = QueryEngine(processor=eis_2lsu_partial)
        with pytest.raises(ValueError, match="pure WHERE"):
            engine.register_standing(
                Query(table, Eq("status", 0), order_by="price"))


class TestShardedDeltas:
    """Delta routing through frozen routers keeps shards consistent."""

    @pytest.mark.parametrize("partitioner,column",
                             [("hash", None), ("hash", "status"),
                              ("range", "price"), ("range", None)])
    def test_sharded_stream_parity(self, eis_2lsu_partial, partitioner,
                                   column, delta_stream):
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        engine = ShardedEngine(shards=3, partitioner=partitioner,
                               partition_column=column)
        queries = [Query(table, shape) for shape in SHAPES]
        for spec in specs[:6]:
            engine.execute_batch(queries)  # warm the shard caches
            engine.apply_delta(table, DeltaBatch.from_spec(spec))
            results = engine.execute_batch(queries)
            expected = QueryEngine(
                processor=eis_2lsu_partial).execute_batch(queries)
            assert [r.rids for r in results] \
                == [r.rids for r in expected]
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.shard.deltas"] == 6
        hits = sum(snapshot["db.shard.%d.cache.hits" % position]
                   for position in range(3))
        assert hits > 0

    def test_shard_tables_share_global_rid_space(self, delta_stream):
        initial, specs = delta_stream
        table = indexed(ColumnarTable("orders", initial))
        engine = ShardedEngine(shards=3)
        shards = engine.shards_for(table)
        held = sorted(rid for shard in shards
                      for rid in shard.held_rids())
        assert held == table.all_rids()
        engine.apply_delta(table, DeltaBatch.from_spec(specs[0]))
        held = sorted(rid for shard in engine.shards_for(table)
                      for rid in shard.held_rids())
        assert held == table.all_rids()


class TestDeltaHelpers:
    def test_delta_mask_matches_scans(self):
        columns = {name: np.asarray(values, dtype=np.int64)
                   for name, values in make_columns(120, 8).items()}
        table = indexed(ColumnarTable("t", {
            name: values.tolist() for name, values in columns.items()}))
        engine = QueryEngine()
        for shape in SHAPES:
            mask = delta_mask(shape, columns)
            expected, _stats = engine.evaluate_predicate(table, shape)
            assert np.flatnonzero(mask).tolist() == expected

    def test_signature_affected_overlap_rules(self):
        touched = {"price": np.asarray([100, 250]),
                   "status": np.asarray([2])}
        assert signature_affected(signature(Eq("status", 2)), touched)
        assert not signature_affected(signature(Eq("status", 1)),
                                      touched)
        assert signature_affected(signature(Range("price", 200, 300)),
                                  touched)
        assert not signature_affected(
            signature(Range("price", 300, 400)), touched)
        assert not signature_affected(signature(In("region", (1, 2))),
                                      touched)
        assert signature_affected(
            signature(Eq("status", 1) | Eq("status", 2)), touched)


class TestCostModelOperands:
    """The public cost-model API accepts ndarray operands."""

    def test_set_operation_ndarray_equals_list(self, eis_2lsu_partial):
        from repro.core.costmodel import CostModel
        model = CostModel()
        set_a = sorted(random.Random(3).sample(range(4000), 300))
        set_b = sorted(random.Random(4).sample(range(4000), 250))
        for which in ("intersection", "union", "difference"):
            expected = model.set_operation(eis_2lsu_partial, which,
                                           set_a, set_b)
            got = model.set_operation(
                eis_2lsu_partial, which,
                np.asarray(set_a, dtype=np.int64),
                np.asarray(set_b, dtype=np.int64))
            assert got == expected

    def test_merge_sort_ndarray_equals_list(self, eis_2lsu_partial):
        from repro.core.costmodel import CostModel
        model = CostModel()
        values = random.Random(5).sample(range(4000), 200)
        expected = model.merge_sort(eis_2lsu_partial, values)
        got = model.merge_sort(eis_2lsu_partial,
                               np.asarray(values, dtype=np.int64))
        assert got == expected
        assert model.merge_sort(eis_2lsu_partial,
                                np.asarray([], dtype=np.int64)) \
            == model.merge_sort(eis_2lsu_partial, [])
