"""Failover primitives and fault-tolerant sharded serving.

The contract under test is ISSUE 9's robustness bar: with a replica
per shard a dead worker is invisible (byte-identical answers via
failover), without replicas the engine *says* it lost a shard (typed
``ShardError`` in strict mode, ``complete=False`` degraded results
otherwise), response corruption is detected by the RID checksum and
retransmitted (never silently merged), and wedged responses are
hedged onto replicas under a modeled-cycle deadline.
"""

import random

import pytest

from repro.db import (CircuitBreaker, Query, QueryEngine, Range,
                      ShardError, ShardedEngine, Table, plan_replicas,
                      rid_checksum)
from repro.db.failover import BREAKER_STATES
from repro.faults.db import (WEDGE_CYCLES, DbFaultInjector,
                             ResponseCorrupt, ResponseDelay, WorkerKill)
from repro.faults.plan import FaultPlan
from repro.supervisor import SuperviseReport, TaskOutcome

ROWS = 240
SHARDS = 4


def build_table(rows=ROWS, seed=31, name="orders"):
    rng = random.Random(seed)
    table = Table(name, {
        "status": [rng.randrange(4) for _ in range(rows)],
        "price": [rng.randrange(500) for _ in range(rows)],
    })
    for column in ("status", "price"):
        table.create_index(column)
    return table


def broad_queries(table, count=6):
    """Every query's predicate holds rows on every shard.

    The OR arm keeps the predicate compound, so every shard attempt
    runs an EIS set op and is charged non-zero modeled cycles — the
    deadline/hedge tests calibrate their budgets from those cycles.
    """
    from repro.db import Eq
    return [Query(table, Range("price", 0, 470 - 10 * index)
                  | Eq("status", index % 4))
            for index in range(count)]


def make_injector(*faults):
    return DbFaultInjector(FaultPlan(list(faults)))


@pytest.fixture(scope="module")
def table():
    return build_table()


@pytest.fixture(scope="module")
def reference(table):
    engine = QueryEngine()
    return [result.rids
            for result in engine.execute_batch(broad_queries(table))]


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)
        for _ in range(2):
            assert breaker.allow() == (True, False)
            breaker.record(False)
        assert breaker.state == "closed"
        breaker.allow()
        breaker.record(False)
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        assert breaker.state == "closed"
        breaker.record(False)
        assert breaker.state == "open"

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record(False)
        assert breaker.state == "open"
        # Refused dispatches count the cooldown down...
        assert breaker.allow() == (False, False)
        assert breaker.allow() == (False, False)
        # ...then exactly one probe is granted.
        assert breaker.allow() == (True, True)
        assert breaker.state == "half_open"
        assert breaker.probes == 1
        # Dispatches racing the in-flight probe stay refused.
        assert breaker.allow() == (False, False)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record(False)
        allowed, probing = breaker.allow()
        assert allowed and probing
        breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.allow() == (True, False)

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record(False)
        assert breaker.trips == 1
        breaker.allow()          # cooldown 1 of 2
        breaker.allow()          # probe granted
        breaker.record(False)    # probe failed
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.allow() == (False, False)  # cooldown restarts
        assert breaker.allow() == (True, True)


# ---------------------------------------------------------------------------
# RID checksum
# ---------------------------------------------------------------------------

class TestRidChecksum:
    def test_empty_is_zero(self):
        assert rid_checksum([]) == 0

    def test_order_sensitive(self):
        assert rid_checksum([1, 2, 3]) != rid_checksum([3, 2, 1])

    def test_detects_every_corruption_mode(self):
        rids = [5, 17, 90, 4096]
        clean = rid_checksum(rids)
        assert rid_checksum(rids[:-1]) != clean           # drop
        assert rid_checksum([5, 17, 90 ^ 8, 4096]) != clean   # flip
        assert rid_checksum(rids + [99999]) != clean      # inject


# ---------------------------------------------------------------------------
# replica placement
# ---------------------------------------------------------------------------

class TestPlanReplicas:
    def test_no_replication_is_empty(self):
        assert plan_replicas([1, 2, 3], 3, 0) == [[], [], []]

    def test_bounds(self):
        with pytest.raises(ValueError):
            plan_replicas([1, 1], 2, 2)   # needs a distinct engine
        with pytest.raises(ValueError):
            plan_replicas([1, 1], 2, -1)
        with pytest.raises(ValueError):
            plan_replicas([1, 1, 1], 2, 1)  # load vector mismatch

    def test_peer_placement_never_self_or_duplicate(self):
        placement = plan_replicas([4, 3, 2, 1], 4, 3)
        for shard, hosts in enumerate(placement):
            assert hosts == [(shard + rank) % 4 for rank in (1, 2, 3)]
            assert shard not in hosts
            assert len(set(hosts)) == len(hosts)

    def test_budget_protects_hottest_shards_first(self):
        # Hot order by load: shard 1, then 2, 3, 0.  With budget 5 the
        # first replica round covers everyone (hottest first) and only
        # shard 1 gets a second copy.
        placement = plan_replicas([10, 50, 30, 20], 4, 2, budget=5)
        assert placement[1] == [2, 3]
        assert placement[2] == [3]
        assert placement[3] == [0]
        assert placement[0] == [1]

    def test_budget_smaller_than_one_round(self):
        placement = plan_replicas([10, 50, 30, 20], 4, 1, budget=2)
        assert placement == [[], [2], [3], []]


# ---------------------------------------------------------------------------
# typed shard error
# ---------------------------------------------------------------------------

class TestShardError:
    def test_carries_context(self):
        error = ShardError("shard 2 failed",
                           outcomes=[{"host": 2, "status": "killed"}],
                           survivors=[1, 2, 3], shard=2, query_index=7)
        assert isinstance(error, RuntimeError)
        assert error.outcomes[0]["status"] == "killed"
        assert error.survivors == [1, 2, 3]
        assert error.shard == 2 and error.query_index == 7
        assert "shard=2" in repr(error) and "query=7" in repr(error)


# ---------------------------------------------------------------------------
# engine-level failover
# ---------------------------------------------------------------------------

class TestEngineFailover:
    def test_defaults_are_fault_free_and_complete(self, table,
                                                  reference):
        engine = ShardedEngine(shards=SHARDS)
        results = engine.execute_batch(broad_queries(table))
        for result, expected in zip(results, reference):
            assert result.rids == expected
            assert result.complete
            assert result.shards_failed == ()
            assert result.failovers == 0
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.failovers"] == 0
        assert snapshot["db.shard.replication"] == 0

    def test_replica_hosts_accessor(self, table):
        engine = ShardedEngine(shards=SHARDS, replication=2)
        hosts = engine.replica_hosts(table, 1)
        assert hosts == [2, 3]
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.shard.1.replicas"] == 2

    def test_kill_with_replica_is_masked(self, table, reference):
        engine = ShardedEngine(shards=SHARDS, replication=1,
                               fault_injector=make_injector(
                                   WorkerKill(0, 0)))
        results = engine.execute_batch(broad_queries(table))
        for result, expected in zip(results, reference):
            assert result.rids == expected
            assert result.complete
        assert sum(result.failovers for result in results) \
            >= len(results)
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.kills"] >= 1
        assert snapshot["db.fault.failovers"] >= 1
        assert snapshot["db.fault.shard_failures"] == 0

    def test_kill_without_replica_degrades_when_not_strict(
            self, table, reference):
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               strict=False,
                               fault_injector=make_injector(
                                   WorkerKill(0, 0)))
        results = engine.execute_batch(broad_queries(table))
        for result, expected in zip(results, reference):
            assert not result.complete
            assert result.shards_failed == (0,)
            assert set(result.rids) < set(expected)
            assert "DEGRADED" in repr(result)
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.degraded"] == len(results)
        assert snapshot["db.fault.shard_failures"] == len(results)

    def test_kill_without_replica_raises_typed_error_when_strict(
            self, table):
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               strict=True,
                               fault_injector=make_injector(
                                   WorkerKill(0, 0)))
        with pytest.raises(ShardError) as excinfo:
            engine.execute(broad_queries(table)[0])
        error = excinfo.value
        assert error.shard == 0
        assert error.survivors  # healthy shards' RIDs kept
        assert any(attempt["status"] == "killed"
                   for attempt in error.outcomes)

    def test_corruption_is_detected_and_retransmitted(self, table,
                                                      reference):
        engine = ShardedEngine(shards=SHARDS,
                               fault_injector=make_injector(
                                   ResponseCorrupt(0, 0, "flip", 2, 5)))
        result = engine.execute(broad_queries(table)[0])
        assert result.rids == reference[0]
        assert result.complete
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.corruptions"] == 1
        assert snapshot["db.fault.corruptions_detected"] == 1
        assert snapshot["db.fault.retransmits"] == 1

    @pytest.mark.parametrize("mode", ["drop", "flip", "inject"])
    def test_every_corruption_mode_never_merges_silently(
            self, table, reference, mode):
        engine = ShardedEngine(shards=SHARDS,
                               fault_injector=make_injector(
                                   ResponseCorrupt(1, 0, mode, 7, 11)))
        result = engine.execute(broad_queries(table)[0])
        assert result.rids == reference[0]

    def _calibrated_deadline(self, table):
        baseline = ShardedEngine(shards=SHARDS)
        results = baseline.execute_batch(broad_queries(table))
        return 8 * max(1, max(max(result.shard_cycles)
                              for result in results))

    def test_wedged_response_is_hedged_onto_replica(self, table,
                                                    reference):
        deadline = self._calibrated_deadline(table)
        engine = ShardedEngine(shards=SHARDS, replication=1,
                               deadline_cycles=deadline,
                               fault_injector=make_injector(
                                   ResponseDelay(2, 0, WEDGE_CYCLES)))
        results = engine.execute_batch(broad_queries(table))
        for result, expected in zip(results, reference):
            assert result.rids == expected
            assert result.complete
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.delays"] == 1
        assert snapshot["db.fault.hedges"] >= 1
        assert snapshot["db.fault.failovers"] >= 1

    def test_wedge_without_replica_misses_deadline_and_degrades(
            self, table, reference):
        deadline = self._calibrated_deadline(table)
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               strict=False, deadline_cycles=deadline,
                               fault_injector=make_injector(
                                   ResponseDelay(2, 0, WEDGE_CYCLES)))
        result = engine.execute_batch(broad_queries(table))[0]
        assert not result.complete
        assert result.shards_failed == (2,)
        assert set(result.rids) < set(reference[0])
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.deadline_misses"] >= 1

    def test_small_delay_within_deadline_is_absorbed(self, table,
                                                     reference):
        deadline = self._calibrated_deadline(table)
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               deadline_cycles=deadline,
                               fault_injector=make_injector(
                                   ResponseDelay(1, 0, 3)))
        result = engine.execute(broad_queries(table)[0])
        assert result.rids == reference[0]
        assert result.complete

    def test_breaker_trips_and_short_circuits_dead_primary(
            self, table, reference):
        engine = ShardedEngine(shards=SHARDS, replication=1,
                               breaker_threshold=2, breaker_cooldown=3,
                               fault_injector=make_injector(
                                   WorkerKill(0, 0)))
        results = engine.execute_batch(broad_queries(table))
        for result, expected in zip(results, reference):
            assert result.rids == expected
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.shard.0.breaker.trips"] >= 1
        assert snapshot["db.shard.0.breaker.short_circuits"] >= 1
        assert snapshot["db.shard.0.breaker.state"] \
            in range(len(BREAKER_STATES))
        assert engine.breakers[0].state in BREAKER_STATES

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedEngine(shards=4, replication=4)
        with pytest.raises(ValueError):
            ShardedEngine(shards=4, replication=-1)
        with pytest.raises(ValueError):
            ShardedEngine(shards=4, hedge_fraction=1.5)


# ---------------------------------------------------------------------------
# pooled scatter failure paths
# ---------------------------------------------------------------------------

class _FakePool:
    """Stands in for the SupervisorPool: returns a canned report."""

    def __init__(self, report):
        self.report = report
        self.calls = 0

    def run(self, tasks, timeout=None, retries=1):
        self.calls += 1
        return self.report

    def shutdown(self):
        pass


def _failed_report(count):
    outcomes = []
    for position in range(count):
        outcome = TaskOutcome("shard-%d" % position)
        outcome.status = "failed"
        outcome.error = "RuntimeError: worker exploded"
        outcome.attempts = 2
        outcomes.append(outcome)
    return SuperviseReport(outcomes, snapshot=None)


class TestPooledFailures:
    def test_strict_without_replicas_raises_with_survivors(self,
                                                           table):
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               strict=True)
        engine._pool = _FakePool(_failed_report(SHARDS))
        queries = broad_queries(table)
        with pytest.raises(ShardError) as excinfo:
            engine.execute_batch(queries, workers=2)
        error = excinfo.value
        assert len(error.outcomes) == SHARDS
        assert all(not outcome.ok for outcome in error.outcomes)
        # The survivors grid keeps its batch x shards shape.
        assert len(error.survivors) == len(queries)
        assert all(len(row) == SHARDS for row in error.survivors)

    def test_replicas_recover_pool_failures_inline(self, table,
                                                   reference):
        engine = ShardedEngine(shards=SHARDS, replication=1,
                               strict=True)
        engine._pool = _FakePool(_failed_report(SHARDS))
        results = engine.execute_batch(broad_queries(table), workers=2)
        for result, expected in zip(results, reference):
            assert result.rids == expected
            assert result.complete
            assert result.failovers >= 1
        snapshot = engine.metrics_snapshot()
        assert snapshot["db.fault.pool_failures"] >= 1
        assert snapshot["db.fault.failovers"] >= 1

    def test_non_strict_degrades_on_total_pool_loss(self, table):
        engine = ShardedEngine(shards=SHARDS, replication=0,
                               strict=False)
        engine._pool = _FakePool(_failed_report(SHARDS))
        results = engine.execute_batch(broad_queries(table), workers=2)
        for result in results:
            assert not result.complete
            assert result.rids == []
            assert set(result.shards_failed) == set(range(SHARDS))
