"""Tests for query-level tracing and the cross-process merge.

The satellite contract this file pins down: deterministic span
ordering, dropped-event accounting under tracer overflow, and a merged
``trace_report`` that is byte-identical for ``workers=1`` vs
``workers=4`` serving of the same batch.
"""

import json
import random

import pytest

from repro.db import Eq, In, Query, QueryEngine, Range, Table
from repro.telemetry.querytrace import (QUERY_TRACE_REPORT_SCHEMA,
                                        QUERY_TRACE_SCHEMA, QueryTracer,
                                        build_chrome_trace,
                                        trace_report, write_query_trace)
from repro.telemetry.tracer import validate_chrome_trace


@pytest.fixture(scope="module")
def table():
    rng = random.Random(77)
    n = 400
    table = Table("orders", {
        "status": [rng.randrange(4) for _ in range(n)],
        "region": [rng.randrange(6) for _ in range(n)],
        "price": [rng.randrange(800) for _ in range(n)],
    })
    for column in ("status", "region", "price"):
        table.create_index(column)
    return table


def distinct_queries(table):
    # distinct shapes: scan-cache/CSE behavior is chunking-dependent
    # for duplicates, and the byte-identical contract needs per-query
    # work that does not depend on which worker served its neighbors
    return [Query(table, Eq("status", 1), order_by="price", limit=5),
            Query(table, Range("price", 100, 400)),
            Query(table, Eq("region", 2) & Range("price", 0, 300)),
            Query(table, In("region", (0, 3)), limit=4),
            Query(table, Eq("status", 2) | Eq("region", 5)),
            Query(table, Range("price", 500, 799), order_by="price"),
            Query(table, Eq("status", 0), limit=2),
            Query(table, Eq("region", 1) - In("status", (0, 1)))]


class TestQueryTracer:
    def test_wall_span_context_manager(self):
        tracer = QueryTracer()
        with tracer.span("parse", query=0):
            pass
        (start, duration, name, args) = tracer.wall_events[0]
        assert name == "parse"
        assert args == {"query": 0}
        assert duration >= 0

    def test_cycle_spans_pack_the_timeline(self):
        tracer = QueryTracer()
        tracer.cycles("scan", 100, "iss", {"query": 0})
        tracer.cycles("sort", 40, "costmodel", {"query": 0})
        assert tracer.cycle_events == [
            (0, 100, "scan", "iss", {"query": 0}),
            (100, 40, "sort", "costmodel", {"query": 0})]
        assert tracer.cycle_cursor == 140

    def test_overflow_counts_drops_and_cursor_advances(self):
        tracer = QueryTracer(limit=2)
        tracer.cycles("a", 10, "iss")
        tracer.cycles("b", 10, "iss")
        tracer.cycles("c", 10, "iss")  # past the limit
        tracer.wall("d", 0, 1)
        assert len(tracer.cycle_events) == 2
        assert tracer.dropped == 2
        # the timeline length stays truthful despite the drops
        assert tracer.cycle_cursor == 30

    def test_payload_roundtrip_and_children(self):
        child = QueryTracer(label="worker 0")
        child.cycles("scan", 10, "iss", {"query": 1})
        parent = QueryTracer()
        parent.add_child(child.to_payload())
        assert parent.children[0]["schema"] == QUERY_TRACE_SCHEMA
        assert parent.children[0]["label"] == "worker 0"
        assert len(parent.payloads()) == 2

    def test_add_child_rejects_foreign_payloads(self):
        tracer = QueryTracer()
        with pytest.raises(ValueError):
            tracer.add_child({"schema": "other"})

    def test_total_dropped_spans_children(self):
        child = QueryTracer(limit=1)
        child.cycles("a", 1, "iss")
        child.cycles("b", 1, "iss")
        parent = QueryTracer()
        parent.add_child(child.to_payload())
        assert parent.total_dropped == 1


class TestChromeExport:
    def build(self):
        parent = QueryTracer(label="engine")
        with parent.span("batch"):
            pass
        child = QueryTracer(label="worker 0", limit=1)
        child.cycles("scan", 25, "costmodel", {"query": 0})
        child.cycles("sort", 5, "costmodel", {"query": 0})  # dropped
        parent.add_child(child.to_payload())
        return parent

    def test_one_process_group_per_worker(self):
        trace = build_chrome_trace(self.build()).to_dict()
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        names = {(e["pid"], e["args"]["name"]) for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
        assert {pid for pid, _name in names} == {1, 2}
        assert any(name == "worker 0" for pid, name in names
                   if pid == 2)

    def test_dual_lanes_and_source_attribution(self):
        trace = build_chrome_trace(self.build()).to_dict()
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        lanes = {(e["pid"], e["tid"]) for e in spans}
        assert (1, 0) in lanes  # engine wall clock
        assert (2, 1) in lanes  # worker modeled cycles
        worker_cycles = [e for e in spans if e["pid"] == 2
                         and e["tid"] == 1]
        assert worker_cycles[0]["cat"] == "costmodel"
        assert worker_cycles[0]["args"]["source"] == "costmodel"

    def test_dropped_events_surface_as_instants(self):
        trace = build_chrome_trace(self.build()).to_dict()
        instants = [e for e in trace["traceEvents"]
                    if e.get("ph") == "i"]
        assert any("dropped" in e["name"] for e in instants)

    def test_write_query_trace(self, tmp_path):
        path = write_query_trace(str(tmp_path / "trace.json"),
                                 self.build())
        validate_chrome_trace(json.load(open(path)))


class TestEngineTracing:
    def test_serial_batch_records_both_timelines(
            self, eis_2lsu_partial, table):
        tracer = QueryTracer()
        engine = QueryEngine(processor=eis_2lsu_partial)
        engine.execute_batch(distinct_queries(table), tracer=tracer)
        wall_names = [event[2] for event in tracer.wall_events]
        assert "batch" in wall_names
        assert "query" in wall_names
        assert "plan" in wall_names
        assert any(name.startswith("scan") for name in wall_names)
        assert tracer.cycle_events  # modeled cycles attributed
        sources = {event[3] for event in tracer.cycle_events}
        assert sources <= {"iss", "costmodel"}

    def test_span_ordering_is_deterministic(self, eis_2lsu_partial,
                                            table):
        def run():
            tracer = QueryTracer()
            QueryEngine(processor=eis_2lsu_partial).execute_batch(
                distinct_queries(table), tracer=tracer)
            return ([event[2] for event in tracer.wall_events],
                    [event[:4] for event in tracer.cycle_events])

        assert run() == run()

    def test_parallel_batch_attaches_worker_traces(
            self, eis_2lsu_partial, table):
        tracer = QueryTracer()
        engine = QueryEngine(processor=eis_2lsu_partial)
        engine.execute_batch(distinct_queries(table), workers=2,
                             tracer=tracer)
        assert len(tracer.children) == 2
        trace = build_chrome_trace(tracer).to_dict()
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        worker_pids = {e["pid"] for e in spans if e["pid"] >= 2}
        assert len(worker_pids) >= 2
        for pid in worker_pids:
            lanes = {e["tid"] for e in spans if e["pid"] == pid}
            assert lanes == {0, 1}  # wall clock + modeled cycles

    def test_merged_report_byte_identical_across_workers(
            self, eis_2lsu_partial, table):
        queries = distinct_queries(table)

        def serve(workers):
            tracer = QueryTracer()
            QueryEngine(processor=eis_2lsu_partial).execute_batch(
                queries, workers=workers, tracer=tracer)
            report = trace_report(tracer)
            assert report["schema"] == QUERY_TRACE_REPORT_SCHEMA
            # leaf-only queries without ORDER BY charge no modeled
            # cycles, so only the cycle-charged subset appears
            assert 0 < report["queries"] <= len(queries)
            return json.dumps(report, sort_keys=True)

        assert serve(1) == serve(4)
