"""EIS-vs-scalar executor parity.

The same query must produce identical rows and RIDs whether the
processor executes it with the EIS set/sort instructions or with the
scalar fallback kernels — only the cycle counts may differ (and the
EIS must win).
"""

import random

import pytest

from repro.db import And, AndNot, Eq, In, Or, QueryExecutor, Range, Table


@pytest.fixture(scope="module")
def table():
    rng = random.Random(47)
    n = 700
    table = Table("events", {
        "kind": [rng.randrange(5) for _ in range(n)],
        "zone": [rng.randrange(7) for _ in range(n)],
        "score": [rng.randrange(500) for _ in range(n)],
    })
    for column in ("kind", "zone", "score"):
        table.create_index(column)
    return table


@pytest.fixture(scope="module")
def executors(eis_2lsu_partial, dba_1lsu):
    return {"eis": QueryExecutor(eis_2lsu_partial),
            "scalar": QueryExecutor(dba_1lsu)}


TREE_SHAPES = [
    Eq("kind", 2),
    And(Eq("kind", 1), Range("score", 50, 400)),
    Or(Eq("zone", 3), Eq("zone", 5)),
    AndNot(Range("score", 0, 350), Eq("kind", 0)),
    And(Or(Eq("kind", 1), Eq("kind", 2)),
        AndNot(Range("score", 100, 450), In("zone", (1, 2, 6)))),
    Or(And(Eq("kind", 3), Eq("zone", 0)),
       Or(Range("score", 440, 499), In("kind", (0, 4)))),
]


class TestWhereParity:
    @pytest.mark.parametrize("index", range(len(TREE_SHAPES)))
    def test_same_rids_and_rows(self, executors, table, index):
        predicate = TREE_SHAPES[index]
        rids_eis, stats_eis = executors["eis"].where(table, predicate)
        rids_scalar, stats_scalar = executors["scalar"].where(
            table, predicate)
        assert rids_eis == rids_scalar
        assert table.fetch(rids_eis) == table.fetch(rids_scalar)
        if stats_eis.set_operations and stats_eis.cycles:
            assert stats_eis.cycles < stats_scalar.cycles


class TestOrderByParity:
    @pytest.mark.parametrize("descending", (False, True))
    def test_order_by_directions(self, executors, table, descending):
        predicate = And(Eq("kind", 1), Range("score", 0, 480))
        rids, _stats = executors["eis"].where(table, predicate)
        ordered_eis, sort_eis = executors["eis"].order_by(
            table, rids, "score", descending)
        ordered_scalar, _ = executors["scalar"].order_by(
            table, rids, "score", descending)
        assert ordered_eis == ordered_scalar
        scores = table.column("score")
        keys = [scores[rid] for rid in ordered_eis]
        assert keys == sorted(keys, reverse=descending)
        # ties break toward ascending RID within equal keys (packing)
        if not descending:
            for first, second in zip(ordered_eis, ordered_eis[1:]):
                if scores[first] == scores[second]:
                    assert first < second

    def test_select_with_projection_and_limit(self, executors, table):
        for descending in (False, True):
            rows_eis, _ = executors["eis"].select(
                table, Or(Eq("zone", 1), Eq("zone", 2)),
                order_by="score", descending=descending,
                columns=("score", "kind"), limit=9)
            rows_scalar, _ = executors["scalar"].select(
                table, Or(Eq("zone", 1), Eq("zone", 2)),
                order_by="score", descending=descending,
                columns=("score", "kind"), limit=9)
            assert rows_eis == rows_scalar
            assert len(rows_eis) == 9
            assert all(set(row) == {"score", "kind"}
                       for row in rows_eis)

    def test_full_scan_sort_parity(self, executors, table):
        ordered_eis, _ = executors["eis"].order_by(
            table, list(range(table.row_count)), "score")
        ordered_scalar, _ = executors["scalar"].order_by(
            table, list(range(table.row_count)), "score")
        assert ordered_eis == ordered_scalar
        assert sorted(ordered_eis) == list(range(table.row_count))
