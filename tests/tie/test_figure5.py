"""The paper's Figure 5 example, verified end to end (D1).

State + register file + operation definition and the corresponding
C-code, exactly as printed in the paper:

    state state8 8 8'h0 add_read_write
    regfile reg32 32 8 reg
    operation add3_shift {out AR res, in reg32 in0, in reg32 in1,
                          in reg32 in2} {in state8}
        {assign res = (in0 + in1 + in2) >> state8;}

    reg32 v0, v1, v2;
    WUR_state8(4);
    int value = add3_shift(v0, v1, v2);
"""

import pytest

from repro.cpu import CoreConfig, Processor
from repro.tie import (Intrinsics, Operand, Operation, RegFile, State,
                       StateUse, TieExtension)


@pytest.fixture()
def figure5():
    state8 = State("state8", width_bits=8, initial=0)
    reg32 = RegFile("reg32", width_bits=32, size=8, prefix="v")
    add3_shift = Operation(
        "add3_shift",
        operands=[Operand("res", "out", "ar"),
                  Operand("in0", "in", reg32),
                  Operand("in1", "in", reg32),
                  Operand("in2", "in", reg32)],
        states=[StateUse(state8, "in")],
        semantics=lambda ext, core, in0, in1, in2:
            ((in0 + in1 + in2) >> ext.state("state8").value)
            & 0xFFFFFFFF,
        circuit={"adder32": 2, "shift_barrel32": 1},
        path=("adder32", "adder32", "shift_barrel32"))
    extension = TieExtension("figure5", states=[state8],
                             regfiles=[reg32],
                             operations=[add3_shift])
    processor = Processor(CoreConfig("demo", dmem0_kb=16,
                                     sim_headroom_kb=0),
                          extensions=[extension])
    return processor, extension, reg32, state8


class TestFigure5:
    def test_state_initialized_to_zero_on_power_on(self, figure5):
        _processor, extension, _reg32, state8 = figure5
        assert state8.value == 0  # 8'h0

    def test_intrinsic_matches_c_code(self, figure5):
        processor, _ext, _reg32, state8 = figure5
        state8.write(4)
        value = Intrinsics(processor).add3_shift(100, 200, 340)
        assert value == (100 + 200 + 340) >> 4

    def test_assembled_program(self, figure5):
        processor, _ext, reg32, _state8 = figure5
        reg32.write(0, 100)
        reg32.write(1, 200)
        reg32.write(2, 340)
        processor.load_program("""
        main:
          movi a2, 4
          wur a2, state8      ; WUR_state8(4)
          add3_shift a3, v0, v1, v2
          halt
        """)
        result = processor.run(entry="main")
        assert result.reg("a3") == 40

    def test_instruction_is_single_cycle(self, figure5):
        processor, _ext, _reg32, _state8 = figure5
        processor.load_program("main:\n  add3_shift a3, v0, v1, v2\n"
                               "  halt")
        baseline = processor.run(entry="main").cycles
        processor.load_program("main:\n  nop\n  halt")
        nop_run = processor.run(entry="main").cycles
        assert baseline == nop_run  # one issue slot, like a nop

    def test_state_read_write_via_rur_wur(self, figure5):
        processor, _ext, _reg32, _state8 = figure5
        processor.load_program("""
        main:
          movi a2, 0x7
          wur a2, state8
          rur a4, state8
          halt
        """)
        assert processor.run(entry="main").reg("a4") == 7

    def test_state_width_masks_wur(self, figure5):
        processor, _ext, _reg32, state8 = figure5
        processor.load_program("""
        main:
          li a2, 0x1FF
          wur a2, state8
          rur a4, state8
          halt
        """)
        assert processor.run(entry="main").reg("a4") == 0xFF

    def test_shift_by_zero_default_state(self, figure5):
        processor, _ext, _reg32, _state8 = figure5
        assert Intrinsics(processor).add3_shift(1, 2, 3) == 6

    def test_netlist_counts_states_and_regfile(self, figure5):
        _processor, extension, _reg32, _state8 = figure5
        netlist = extension.netlist()
        # 8 state bits + 8x32 regfile bits, at >= 6 GE per flop
        assert netlist.groups["states"] >= (8 + 256) * 6
        assert "op:add3_shift" in netlist.groups
        assert netlist.longest_path_fo4() == 13 + 13 + 12
