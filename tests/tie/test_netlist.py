"""Unit tests for the netlist cost model."""

import pytest

from repro.tie import (Netlist, Operation, State, StateUse,
                       TieError, TieExtension, circuit_cost,
                       extension_netlist, path_delay, primitive)


class TestPrimitives:
    def test_known_primitive(self):
        comparator = primitive("cmp32")
        assert comparator.ge > 0
        assert comparator.delay_fo4 > 0

    def test_unknown_primitive(self):
        with pytest.raises(TieError):
            primitive("flux_capacitor")

    def test_circuit_cost_sums(self):
        cost = circuit_cost({"cmp32": 2, "ff_bit": 10})
        assert cost == 2 * primitive("cmp32").ge \
            + 10 * primitive("ff_bit").ge

    def test_path_delay_series(self):
        delay = path_delay(("cmp32", "mux2_32"))
        assert delay == primitive("cmp32").delay_fo4 \
            + primitive("mux2_32").delay_fo4


class TestNetlist:
    def test_groups_accumulate(self):
        netlist = Netlist("n")
        netlist.add("a", 100)
        netlist.add("a", 50)
        netlist.add("b", 25)
        assert netlist.groups == {"a": 150, "b": 25}
        assert netlist.total_ge() == 175
        assert netlist.share("a") == pytest.approx(150 / 175)

    def test_paths_keep_maximum(self):
        netlist = Netlist("n")
        netlist.add_path("x", 10)
        netlist.add_path("x", 5)
        netlist.add_path("y", 30)
        assert netlist.paths["x"] == 10
        assert netlist.longest_path_fo4() == 30

    def test_merge(self):
        left = Netlist("l")
        left.add("a", 10)
        left.add_path("p", 3)
        right = Netlist("r")
        right.add("a", 5)
        right.add("b", 1)
        right.add_path("p", 7)
        merged = left.merged_with(right)
        assert merged.groups == {"a": 15, "b": 1}
        assert merged.paths["p"] == 7

    def test_empty_netlist(self):
        netlist = Netlist("empty")
        assert netlist.total_ge() == 0
        assert netlist.longest_path_fo4() == 0
        assert netlist.share("nothing") == 0.0


class TestExtensionNetlist:
    def test_ports_make_states_cost_more_than_flops(self):
        state = State("s", width_bits=32, read_write=False)
        touch = Operation("touch", states=[StateUse(state, "inout")],
                          semantics=lambda e, c: None)
        with_port = TieExtension("x", states=[state], operations=[touch])
        netlist = extension_netlist(with_port)
        flops_only = 32 * primitive("ff_bit").ge
        assert netlist.groups["states"] > flops_only

    def test_shared_circuits_land_in_group(self):
        ext = TieExtension(
            "x",
            operations=[Operation("o", semantics=lambda e, c: None,
                                  group="all")],
            shared_circuits={"all": {"cmp32": 4}},
            shared_paths={"matrix": ("cmp32",)})
        netlist = extension_netlist(ext)
        assert netlist.groups["op:all"] >= 4 * primitive("cmp32").ge
        assert netlist.paths["matrix"] == primitive("cmp32").delay_fo4
