"""Unit tests for the intrinsics layer."""

import pytest

from repro.cpu import CoreConfig, Processor
from repro.tie import (Intrinsics, Operand, Operation, RegFile, State,
                       StateUse, TieError, TieExtension)


@pytest.fixture()
def processor():
    counter = State("counter", width_bits=16)
    regfile = RegFile("vv", width_bits=32, size=4, prefix="w")

    def bump(ext, core, amount):
        state = ext.state("counter")
        state.write(state.value + amount)
        return state.value

    bump_op = Operation(
        "bump",
        operands=[Operand("new", "out", "ar"),
                  Operand("amount", "in", "ar")],
        states=[StateUse(counter, "inout")],
        semantics=bump)
    scale_op = Operation(
        "scale",
        operands=[Operand("res", "out", regfile),
                  Operand("val", "in", regfile),
                  Operand("factor", "in", "imm")],
        semantics=lambda ext, core, val, factor: (val * factor)
        & 0xFFFFFFFF)
    ext = TieExtension("demo", states=[counter], regfiles=[regfile],
                       operations=[bump_op, scale_op])
    return Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0),
                     extensions=[ext])


class TestIntrinsics:
    def test_state_mutation_visible_across_calls(self, processor):
        intrinsics = Intrinsics(processor)
        assert intrinsics.bump(5) == 5
        assert intrinsics.bump(3) == 8

    def test_regfile_and_immediate_operands(self, processor):
        intrinsics = Intrinsics(processor)
        assert intrinsics.scale(6, 7) == 42

    def test_wrong_input_count(self, processor):
        intrinsics = Intrinsics(processor)
        with pytest.raises(TieError, match="takes 1 inputs"):
            intrinsics.bump(1, 2)

    def test_unknown_operation(self, processor):
        intrinsics = Intrinsics(processor)
        with pytest.raises(AttributeError):
            intrinsics.not_an_op

    def test_base_instruction_rejected(self, processor):
        intrinsics = Intrinsics(processor)
        with pytest.raises(TieError, match="not a TIE operation"):
            intrinsics.add

    def test_assembly_and_intrinsic_agree(self, processor):
        intrinsics = Intrinsics(processor)
        via_intrinsic = intrinsics.scale(9, 5)
        regfile = processor.regfiles["vv"]
        regfile.write(0, 9)
        processor.load_program("main:\n  scale w1, w0, 5\n  halt")
        processor.run(entry="main")
        assert regfile.read(1) == via_intrinsic == 45


class TestAssemblerRegfileErrors:
    def test_unknown_regfile_token(self, processor):
        from repro.isa.errors import AssemblerError
        with pytest.raises(AssemblerError, match="not a vv register"):
            processor.load_program("main:\n  scale w1, q0, 5\n  halt")

    def test_out_of_range_regfile_index(self, processor):
        from repro.isa.errors import AssemblerError
        with pytest.raises(AssemblerError):
            processor.load_program("main:\n  scale w1, w9, 5\n  halt")
