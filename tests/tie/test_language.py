"""Unit tests for the TIE declaration layer."""

import pytest

from repro.tie import (Operand, Operation, RegFile, State, StateUse,
                       TieError, TieExtension, VectorState)


class TestState:
    def test_initial_value_and_reset(self):
        state = State("s", width_bits=8, initial=0x5A)
        assert state.value == 0x5A
        state.write(0xFF)
        state.reset()
        assert state.value == 0x5A

    def test_write_masks_to_width(self):
        state = State("s", width_bits=8)
        state.write(0x1FF)
        assert state.value == 0xFF

    def test_wide_states_not_software_visible(self):
        assert State("s", width_bits=32).read_write
        assert not State("s", width_bits=64).read_write
        assert not State("s", width_bits=16, read_write=False).read_write

    def test_zero_width_rejected(self):
        with pytest.raises(TieError):
            State("s", width_bits=0)


class TestVectorState:
    def test_lanes_and_reset(self):
        vec = VectorState("v", 4, [1, 2, 3, 4])
        vec.value = [9, 9, 9, 9]
        vec.reset()
        assert vec.value == [1, 2, 3, 4]

    def test_write_validates_lane_count(self):
        vec = VectorState("v", 4)
        with pytest.raises(TieError):
            vec.write([1, 2, 3])

    def test_write_masks_lanes(self):
        vec = VectorState("v", 2, [0, 0])
        vec.write([1 << 33, 5])
        assert vec.value == [0, 5]

    def test_width_is_lanes_times_32(self):
        assert VectorState("v", 4).width_bits == 128

    def test_bad_initial_length(self):
        with pytest.raises(TieError):
            VectorState("v", 4, [1, 2])


class TestRegFile:
    def test_parse_prefixed_names(self):
        regfile = RegFile("reg32", size=8, prefix="v")
        assert regfile.parse("v0") == 0
        assert regfile.parse("v7") == 7

    def test_parse_rejects_foreign_tokens(self):
        regfile = RegFile("reg32", size=8, prefix="v")
        for token in ("v8", "a0", "v", "w1", "v1x"):
            with pytest.raises(TieError):
                regfile.parse(token)

    def test_write_masks(self):
        regfile = RegFile("r", width_bits=16, size=2)
        regfile.write(0, 0x12345)
        assert regfile.read(0) == 0x2345

    def test_size_limited_to_operand_field(self):
        with pytest.raises(TieError):
            RegFile("big", size=17)


class TestOperandAndOperation:
    def test_operand_validation(self):
        with pytest.raises(TieError):
            Operand("x", "inout", "ar")
        with pytest.raises(TieError):
            Operand("x", "in", "weird")

    def test_compact_kinds(self):
        regfile = RegFile("rf", size=4)
        assert Operand("a", "in", "ar").compact_kind == "ar"
        assert Operand("b", "in", "imm").compact_kind == "imm"
        assert Operand("c", "in", regfile).compact_kind == "rf:rf"

    def test_operation_requires_semantics(self):
        with pytest.raises(TieError):
            Operation("nothing")

    def test_state_use_direction(self):
        state = State("s")
        with pytest.raises(TieError):
            StateUse(state, "sideways")

    def test_group_defaults_to_name(self):
        op = Operation("myop", semantics=lambda e, c: None)
        assert op.group == "myop"


class TestExtensionLookups:
    def make(self):
        state = State("s8", 8)
        regfile = RegFile("rf", size=4)
        op = Operation("op1", semantics=lambda e, c: None)
        return TieExtension("x", states=[state], regfiles=[regfile],
                            operations=[op])

    def test_lookup_by_name(self):
        ext = self.make()
        assert ext.state("s8").name == "s8"
        assert ext.regfile("rf").name == "rf"
        assert ext.operation("op1").name == "op1"

    def test_missing_lookups_raise(self):
        ext = self.make()
        with pytest.raises(TieError):
            ext.state("nope")
        with pytest.raises(TieError):
            ext.regfile("nope")
        with pytest.raises(TieError):
            ext.operation("nope")

    def test_reset_clears_states_and_regfiles(self):
        ext = self.make()
        ext.state("s8").write(7)
        ext.regfile("rf").write(0, 3)
        ext.reset()
        assert ext.state("s8").value == 0
        assert ext.regfile("rf").read(0) == 0

    def test_double_attach_rejected(self):
        from repro.cpu import CoreConfig, Processor
        ext = self.make()
        Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0),
                  extensions=[ext])
        with pytest.raises(TieError, match="already attached"):
            ext.attach(object())
