"""TIE compiler and FLIX bundle format tests."""

import pytest

from repro.cpu import CoreConfig, Processor
from repro.isa.errors import EncodingError
from repro.tie import (FlixFormat, Operand, Operation, RegFile, Slot,
                       TieError, TieExtension)
from repro.tie.compiler import compile_operation
from repro.isa.instructions import InstructionSet


def simple_op(name="op", operands=(), extra=None):
    return Operation(name, operands=operands,
                     semantics=lambda ext, core, *ins: extra)


class TestOperationCompilation:
    def test_format_selection(self):
        isa = InstructionSet()
        rf = RegFile("rf", size=4)
        ext = TieExtension("x", operations=[])
        cases = [
            ([], "N"),
            ([Operand("a", "out", "ar")], "R"),
            ([Operand("a", "out", "ar"), Operand("b", "in", rf),
              Operand("c", "in", rf)], "R"),
            ([Operand("a", "out", "ar"), Operand("b", "in", rf),
              Operand("c", "in", rf), Operand("d", "in", rf)], "R4"),
            ([Operand("a", "out", "ar"), Operand("i", "in", "imm")], "I"),
        ]
        for operands, expected_fmt in cases:
            spec = compile_operation(simple_op(operands=operands,
                                               name="op%d" % len(operands)
                                               + expected_fmt),
                                     ext, isa)
            assert spec.fmt == expected_fmt

    def test_scoreboard_positions(self):
        isa = InstructionSet()
        ext = TieExtension("x", operations=[])
        op = simple_op(operands=[Operand("flag", "out", "ar"),
                                 Operand("src", "in", "ar")])
        spec = compile_operation(op, ext, isa)
        assert spec.reads_positions == (1,)
        assert spec.writes_positions == (0,)

    def test_too_many_register_operands(self):
        isa = InstructionSet()
        ext = TieExtension("x", operations=[])
        operands = [Operand("o%d" % i, "in", "ar") for i in range(5)]
        with pytest.raises(TieError, match="four"):
            compile_operation(simple_op(operands=operands), ext, isa)

    def test_immediate_must_be_last(self):
        isa = InstructionSet()
        ext = TieExtension("x", operations=[])
        operands = [Operand("i", "in", "imm"), Operand("a", "in", "ar")]
        with pytest.raises(TieError, match="last"):
            compile_operation(simple_op(operands=operands), ext, isa)

    def test_immediate_output_rejected(self):
        isa = InstructionSet()
        ext = TieExtension("x", operations=[])
        with pytest.raises(TieError):
            compile_operation(
                simple_op(operands=[Operand("i", "out", "imm")]),
                ext, isa)

    def test_extension_opcodes_allocated_in_extension_space(self):
        isa = InstructionSet()
        ext = TieExtension("x", operations=[])
        spec = compile_operation(simple_op(), ext, isa)
        assert 0x80 <= spec.opcode <= 0xEF


class TestExecutorMarshalling:
    def test_ar_in_out_round_trip(self):
        doubler = Operation(
            "doubler",
            operands=[Operand("res", "out", "ar"),
                      Operand("val", "in", "ar")],
            semantics=lambda ext, core, value: (value * 2) & 0xFFFFFFFF)
        ext = TieExtension("d", operations=[doubler])
        processor = Processor(CoreConfig("t", dmem0_kb=16,
                                         sim_headroom_kb=0),
                              extensions=[ext])
        processor.load_program("main:\n  doubler a3, a2\n  halt")
        assert processor.run(entry="main",
                             regs={"a2": 21}).reg("a3") == 42

    def test_immediate_operand(self):
        addk = Operation(
            "addk",
            operands=[Operand("res", "out", "ar"),
                      Operand("val", "in", "ar"),
                      Operand("k", "in", "imm")],
            semantics=lambda ext, core, value, k: (value + k)
            & 0xFFFFFFFF)
        ext = TieExtension("d", operations=[addk])
        processor = Processor(CoreConfig("t", dmem0_kb=16,
                                         sim_headroom_kb=0),
                              extensions=[ext])
        processor.load_program("main:\n  addk a3, a2, 17\n  halt")
        assert processor.run(entry="main",
                             regs={"a2": 25}).reg("a3") == 42

    def test_multi_output(self):
        divmod_op = Operation(
            "divmod10",
            operands=[Operand("q", "out", "ar"),
                      Operand("r", "out", "ar"),
                      Operand("val", "in", "ar")],
            semantics=lambda ext, core, value: (value // 10, value % 10))
        ext = TieExtension("d", operations=[divmod_op])
        processor = Processor(CoreConfig("t", dmem0_kb=16,
                                         sim_headroom_kb=0),
                              extensions=[ext])
        processor.load_program("main:\n  divmod10 a3, a4, a2\n  halt")
        result = processor.run(entry="main", regs={"a2": 47})
        assert result.reg("a3") == 4
        assert result.reg("a4") == 7

    def test_wrong_output_arity_detected(self):
        bad = Operation(
            "bad2",
            operands=[Operand("q", "out", "ar"),
                      Operand("r", "out", "ar")],
            semantics=lambda ext, core: 1)  # should return a 2-tuple
        ext = TieExtension("d", operations=[bad])
        processor = Processor(CoreConfig("t", dmem0_kb=16,
                                         sim_headroom_kb=0),
                              extensions=[ext])
        processor.load_program("main:\n  bad2 a3, a4\n  halt")
        with pytest.raises(TieError, match="outputs"):
            processor.run(entry="main")


class TestFlixEncoding:
    @pytest.fixture()
    def eis(self):
        from repro.configs.catalog import build_processor
        return build_processor("DBA_2LSU_EIS")

    def test_bundle_round_trip(self, eis):
        program = eis.assembler.assemble(
            "x:\n  { store_sop_int a8 ; beqz a8, x }\n"
            "  { ld_ldp_shuffle }\n  halt")
        words = program.encode()
        flix_format = eis.flix_formats[0]
        slots = flix_format.decode_bundle(words[0], words[1], 2, 0)
        assert slots[0][0].name == "store_sop_int"
        assert slots[0][1] == (8,)
        assert slots[1][0].name == "beqz"
        assert slots[1][1] == (8, 0)  # absolute target

    def test_slot_classes_enforced(self, eis):
        # two control ops cannot share a bundle: only one ctl slot
        from repro.isa.errors import AssemblerError
        with pytest.raises(AssemblerError, match="no FLIX format"):
            eis.assembler.assemble("x:\n  { beqz a2, x ; beqz a3, x }\n")

    def test_branch_range_limited_in_bundles(self, eis):
        body = ["x:"]
        body.append("  { store_sop_int a8 ; beqz a8, far }")
        body.extend("  nop" for _ in range(600))
        body.append("far:")
        body.append("  halt")
        program = eis.assembler.assemble("\n".join(body))
        with pytest.raises(EncodingError, match="out of range"):
            program.encode()

    def test_slot_accepts(self):
        slot = Slot("mem", ("mem", "compute"))
        spec_like = type("S", (), {"kind": "tie", "slot_class": "mem"})()
        assert slot.accepts(spec_like)
        alu_like = type("S", (), {"kind": "alu"})()
        assert not slot.accepts(alu_like)

    def test_format_id_range(self):
        with pytest.raises(TieError):
            FlixFormat("x", 16, [])
