"""Value-range abstract interpretation (Interval domain + VAL checks)."""

from repro.analysis import (DiagnosticReport, Interval, analyze,
                            build_cfg, check_values)
from repro.analysis.absint import M32

from .conftest import codes


def run_analysis(processor, source):
    program = processor.assembler.assemble(source, "absint.s")
    entry = "main" if "main" in program.labels else 0
    cfg = build_cfg(program, entry)
    return cfg, analyze(cfg, processor)


def lint_values(processor, source):
    cfg, result = run_analysis(processor, source)
    report = DiagnosticReport()
    check_values(cfg, report, processor, result)
    return report


class TestIntervalDomain:
    def test_const_roundtrip(self):
        value = Interval.const(0x100)
        assert value.is_const and value.lo == value.hi == 0x100
        assert value.rem == 0x100

    def test_join_hulls_bounds_and_meets_congruence(self):
        joined = Interval.const(4).join(Interval.const(12))
        assert (joined.lo, joined.hi) == (4, 12)
        # 4 and 12 agree mod 8, disagree mod 16.
        assert joined.mod == 8 and joined.rem == 4

    def test_top_absorbs(self):
        assert Interval.const(7).join(Interval.top()).is_top

    def test_add_const_wrap_classification(self):
        clean, wraps, may = Interval(0, 0x10).add_const(4)
        assert (clean.lo, clean.hi) == (4, 0x14)
        assert not wraps and not may
        wrapped, wraps, may = Interval(4, 8).add_const(-16)
        assert wraps and may
        assert (wrapped.lo, wrapped.hi) == ((4 - 16) & M32, (8 - 16) & M32)
        partial, wraps, may = Interval(0, 8).add_const(-4)
        assert not wraps and may
        assert partial.lo == 0 and partial.hi == M32

    def test_shift_left_builds_congruence(self):
        scaled = Interval(0, 10).shift_left(2)
        assert (scaled.lo, scaled.hi) == (0, 40)
        assert scaled.mod >= 4 and scaled.rem % 4 == 0
        # Even an unbounded base keeps the alignment fact.
        assert Interval.top().shift_left(3).mod == 8

    def test_bit_and_clamps(self):
        masked = Interval(0, M32).bit_and(0xFF)
        assert masked.lo == 0 and masked.hi == 0xFF

    def test_widen_snaps_to_threshold(self):
        older = Interval(0, 0x100)
        newer = Interval(0, 0x104)
        widened = older.widen(newer, [0, 0x8000, M32])
        assert widened.hi == 0x8000
        # A stable bound is left alone.
        assert widened.lo == 0

    def test_meet_bounds_empty(self):
        assert Interval(0, 4).meet_bounds(8, 12) is None


class TestAnalysis:
    def test_constants_propagate(self, eis_2lsu_partial):
        cfg, result = run_analysis(
            eis_2lsu_partial,
            "main:\n  movi a8, 0x40\n  addi a8, a8, 8\n  halt\n")
        env = result.env_in[max(result.reachable)]  # at the halt
        assert env.reg(8) == Interval.const(0x48)

    def test_join_at_merge_point(self, eis_2lsu_partial):
        cfg, result = run_analysis(
            eis_2lsu_partial,
            "main:\n"
            "  movi a8, 4\n"
            "  beqz a2, go\n"
            "  movi a8, 12\n"
            "go:\n"
            "  halt\n")
        halt_node = max(result.reachable)
        env = result.env_in[halt_node]
        assert (env.reg(8).lo, env.reg(8).hi) == (4, 12)

    def test_loop_pointer_narrowed_below_bound(self, eis_2lsu_partial):
        # The bltu at the bottom bounds a8; widening must not leak
        # past it once the narrowing sweeps run.
        cfg, result = run_analysis(
            eis_2lsu_partial,
            "main:\n"
            "  movi a8, 0\n"
            "  li a9, 0x4000\n"
            "loop:\n"
            "  l32i a10, a8, 0\n"
            "  addi a8, a8, 4\n"
            "  bltu a8, a9, loop\n"
            "  halt\n")
        loop = cfg.program.labels["loop"]
        pointer = result.env_in[loop].reg(8)
        assert pointer.lo == 0
        # Bounds stay below the loop bound; the congruence excludes
        # the last three bytes, so the access is proven in-bounds.
        assert pointer.hi <= 0x4000 - 1
        assert pointer.mod % 4 == 0 and pointer.rem % 4 == 0

    def test_hardware_states_read_as_unknown(self, eis_2lsu_partial):
        from repro.configs.catalog import build_processor
        core = build_processor("DBA_2LSU_EIS", prefetcher=True)
        cfg, result = run_analysis(
            core,
            "main:\n"
            "  movi a8, 7\n"
            "  wur a8, DMA_LEN\n"
            "  rur a9, DMA_DONE\n"
            "  rur a10, DMA_LEN\n"
            "  halt\n")
        env = result.env_out(max(result.reachable))
        assert env.reg(9).is_top          # engine-maintained counter
        assert env.reg(10) == Interval.const(7)  # software state


class TestValChecks:
    def test_in_bounds_loop_is_clean(self, eis_2lsu_partial):
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  movi a8, 0\n"
            "  li a9, 0x4000\n"
            "loop:\n"
            "  l32i a10, a8, 0\n"
            "  addi a8, a8, 4\n"
            "  bltu a8, a9, loop\n"
            "  halt\n")
        assert len(report) == 0

    def test_val001_provable_oob_range(self, eis_2lsu_partial):
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  li a8, 0x40000000\n"
            "  beqz a2, go\n"
            "  li a8, 0x40000100\n"
            "go:\n"
            "  l32i a9, a8, 0\n"
            "  halt\n")
        found = report.by_code("VAL001")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_val002_misaligned_even_when_unbounded(self,
                                                   eis_2lsu_partial):
        # a2 is a run-time argument: the range is TOP, but the
        # congruence still proves every address is 2 mod 4.
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  slli a8, a2, 2\n"
            "  addi a8, a8, 2\n"
            "  l32i a9, a8, 0\n"
            "  halt\n")
        found = report.by_code("VAL002")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_val003_wraparound(self, eis_2lsu_partial):
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  movi a8, 4\n"
            "  beqz a2, go\n"
            "  movi a8, 8\n"
            "go:\n"
            "  l32i a9, a8, -16\n"
            "  halt\n")
        assert "VAL003" in codes(report)

    def test_val004_partial_overrun(self, eis_2lsu_partial):
        # The loop bound lets the pointer run past the end of dmem0's
        # simulated region: part of the range faults.
        size = max(region.base + region.size_bytes
                   for region in eis_2lsu_partial.memory_map
                   if region.base == 0)
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  li a8, 0x%x\n"
            "  li a9, 0x%x\n"
            "loop:\n"
            "  l32i a10, a8, 0\n"
            "  addi a8, a8, 4\n"
            "  bltu a8, a9, loop\n"
            "  halt\n" % (size - 0x100, size + 0x100))
        assert "VAL004" in codes(report)

    def test_val005_pointer_state_oob(self, eis_2lsu_partial):
        report = lint_values(
            eis_2lsu_partial,
            "main:\n"
            "  li a8, 0x40000000\n"
            "  beqz a2, go\n"
            "  li a8, 0x40000004\n"
            "go:\n"
            "  wur a8, sop_ptr_a\n"
            "  halt\n")
        found = report.by_code("VAL005")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_literal_addresses_left_to_mem_checks(self,
                                                  eis_2lsu_partial):
        # A single-constant OOB access is MEM001 territory; VAL must
        # not duplicate it.
        report = lint_values(
            eis_2lsu_partial,
            "main:\n  li a8, 0x40000000\n  l32i a9, a8, 0\n  halt\n")
        assert "VAL001" not in codes(report)

    def test_builtin_kernels_are_clean(self, eis_2lsu_partial):
        from repro.core.kernels import builtin_kernel_sources
        for name, source in builtin_kernel_sources(eis_2lsu_partial):
            program = eis_2lsu_partial.assembler.assemble(source, name)
            entry = "main" if "main" in program.labels else 0
            cfg = build_cfg(program, entry)
            report = check_values(cfg, DiagnosticReport(),
                                  eis_2lsu_partial)
            assert len(report.at_least("warning")) == 0, \
                (name, report.format())
