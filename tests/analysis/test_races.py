"""Static DMA/LSU race detection (RACE001..RACE006)."""

import pytest

from repro.analysis import (DiagnosticReport, build_cfg, check_races,
                            check_transfer_schedule)
from repro.configs.catalog import build_processor

from .conftest import codes


@pytest.fixture(scope="module")
def dma_core():
    return build_processor("DBA_2LSU_EIS", prefetcher=True)


def lint_races(processor, source):
    program = processor.assembler.assemble(source, "races.s")
    entry = "main" if "main" in program.labels else 0
    cfg = build_cfg(program, entry)
    report = DiagnosticReport()
    check_races(cfg, report, processor)
    return report


START_FILL = (
    "main:\n"
    "  li a2, 0x80000000\n"
    "  wur a2, DMA_SRC\n"
    "  movi a2, 0\n"
    "  wur a2, DMA_DST\n"
    "  li a2, 0x4000\n"
    "  wur a2, DMA_LEN\n"
    "  movi a2, 1\n"
    "  wur a2, DMA_CTRL\n"
)

WAIT_LOOP = (
    "  movi a5, 1\n"
    "wait:\n"
    "  rur a8, DMA_DONE\n"
    "  blt a8, a5, wait\n"
)


class TestKernelRaces:
    def test_no_dma_engine_no_diagnostics(self, eis_2lsu_partial):
        # A core without the prefetcher has no DMA states at all.
        report = lint_races(eis_2lsu_partial,
                            "main:\n  movi a8, 0\n"
                            "  l32i a9, a8, 0\n  halt\n")
        assert len(report) == 0

    def test_race001_read_of_in_flight_window(self, dma_core):
        report = lint_races(dma_core, START_FILL +
                            "  movi a3, 0\n"
                            "  l32i a4, a3, 0\n" + WAIT_LOOP +
                            "  halt\n")
        found = report.by_code("RACE001")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_clean_after_wait_barrier(self, dma_core):
        report = lint_races(dma_core, START_FILL + WAIT_LOOP +
                            "  movi a3, 0\n"
                            "  l32i a4, a3, 0\n"
                            "  halt\n")
        assert "RACE001" not in codes(report)
        assert "RACE002" not in codes(report)
        assert "RACE003" not in codes(report)

    def test_race003_window_in_flight_at_halt(self, dma_core):
        report = lint_races(dma_core, START_FILL + "  halt\n")
        found = report.by_code("RACE003")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_race002_possible_overlap(self, dma_core):
        # The access range straddles the window end: some admitted
        # addresses collide, some don't.
        report = lint_races(dma_core, START_FILL +
                            "  li a3, 0x3FFC\n"
                            "  beqz a4, go\n"
                            "  li a3, 0x4004\n"
                            "go:\n"
                            "  l32i a4, a3, 0\n" + WAIT_LOOP +
                            "  halt\n")
        assert "RACE002" in codes(report)
        assert "RACE001" not in codes(report)

    def test_race001_pointer_state_into_window(self, dma_core):
        report = lint_races(dma_core, START_FILL +
                            "  movi a3, 0x100\n"
                            "  wur a3, sop_ptr_a\n" + WAIT_LOOP +
                            "  halt\n")
        assert "RACE001" in codes(report)

    def test_unguarded_poll_is_not_a_barrier(self, dma_core):
        # Reading DMA_DONE without branching on it retires nothing.
        report = lint_races(dma_core, START_FILL +
                            "  rur a8, DMA_DONE\n"
                            "  movi a3, 0\n"
                            "  l32i a4, a3, 0\n"
                            "  halt\n")
        assert "RACE001" in codes(report)

    def test_access_outside_window_is_clean(self, dma_core):
        report = lint_races(dma_core, START_FILL +
                            "  li a3, 0x6000\n"
                            "  beqz a4, go\n"
                            "  li a3, 0x6100\n"
                            "go:\n"
                            "  l32i a4, a3, 0\n" + WAIT_LOOP +
                            "  halt\n")
        assert "RACE001" not in codes(report)
        assert "RACE002" not in codes(report)

    def test_streaming_kernels_are_clean(self, dma_core):
        from repro.core.streaming import streaming_kernel
        for which in ("intersection", "union", "difference"):
            for overlap in (True, False):
                source = streaming_kernel(which, 2, overlap)
                report = lint_races(dma_core, source)
                assert len(report.at_least("warning")) == 0, \
                    (which, overlap, report.format())


REGIONS = [("dmem0", 0, 0x18000)]


class TestTransferSchedule:
    def test_clean_double_buffered_schedule(self):
        report = check_transfer_schedule(
            [(0x0000, 0x4000), (0x8000, 0x4000),
             (0x4000, 0x4000), (0xC000, 0x4000)],
            regions=REGIONS, concurrency=2)
        assert len(report) == 0

    def test_race004_window_outside_regions(self):
        report = check_transfer_schedule(
            [(0x20000, 64)], regions=REGIONS)
        found = report.by_code("RACE004")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_race005_reserved_overlap(self):
        report = check_transfer_schedule(
            [(0x1000, 0x100, "chunk 0")], regions=REGIONS,
            reserved=[("descriptor table", 0x1080, 0x80)])
        found = report.by_code("RACE005")
        assert len(found) == 1
        assert "descriptor table" in found[0].message

    def test_race006_concurrent_overlap(self):
        report = check_transfer_schedule(
            [(0x0000, 0x4000), (0x2000, 0x4000)],
            regions=REGIONS, concurrency=2)
        assert "RACE006" in codes(report)

    def test_concurrency_window_bounds_the_check(self):
        # Reusing a buffer half two chunks later is the whole point of
        # double buffering: descriptors 0 and 2 may not be concurrent.
        windows = [(0x0000, 0x4000), (0x8000, 0x4000),
                   (0x0000, 0x4000), (0x8000, 0x4000)]
        assert "RACE006" not in codes(check_transfer_schedule(
            windows, regions=REGIONS, concurrency=2))
        assert "RACE006" in codes(check_transfer_schedule(
            windows, regions=REGIONS, concurrency=4))

    def test_zero_length_windows_skipped(self):
        report = check_transfer_schedule(
            [(0x0000, 0), (0x0000, 0)], regions=REGIONS)
        assert len(report) == 0

    def test_streaming_schedule_validates(self, dma_core):
        from repro.core.streaming import streaming_schedule
        windows = streaming_schedule(
            [(0x4000, 0x4000), (0x3000, 0x2000), (0x4000, 0x4000)],
            num_lsus=2)
        report = check_transfer_schedule(windows, processor=dma_core,
                                         concurrency=4)
        assert len(report) == 0
