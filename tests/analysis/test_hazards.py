"""Structural hazard and encodability checks (HZ001..HZ008)."""

import pytest

from repro.analysis import DiagnosticReport, check_hazards
from repro.isa.assembler import AsmItem, Bundle, BUNDLE_TAIL, Program

from .conftest import codes


def lint_hazards(program, flix_formats=()):
    report = DiagnosticReport()
    check_hazards(program, report, flix_formats=flix_formats)
    return report


def make_bundle_program(processor, slots, line=1):
    """A one-bundle program built outside the assembler's validation."""
    flix_format = processor.flix_formats[0]
    items = [Bundle(list(slots), flix_format, line), BUNDLE_TAIL]
    return Program(items, {}, "seeded.s"), flix_format


def spec_of(processor, name):
    return processor.isa.lookup(name)


class TestBundleHazards:
    def test_builtin_fused_bundle_is_info_only(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            "main:\n"
            "  { store_sop_int a8 ; beqz a8, out }\n"
            "out:\n"
            "  halt\n")
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        raw = report.by_code("HZ002")
        assert len(raw) == 1
        assert raw[0].severity == "info"
        assert not report.has_errors

    def test_waw_between_slots(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            "main:\n  { store_sop_int a8 ; movi a8, 1 }\n  halt\n")
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        found = report.by_code("HZ001")
        assert len(found) == 1
        assert found[0].severity == "error"
        assert "a8" in found[0].message
        assert found[0].line == 2

    def test_slot_class_violation(self, eis_2lsu_partial):
        # Two ALU ops cannot share a db64 bundle (one ctl slot); the
        # assembler refuses to build this, so construct it directly.
        add = spec_of(eis_2lsu_partial, "add")
        program, _fmt = make_bundle_program(eis_2lsu_partial, [
            AsmItem(add, (8, 2, 3), 1), AsmItem(add, (9, 4, 5), 1)])
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        assert "HZ003" in codes(report)

    def test_unknown_format(self, eis_2lsu_partial):
        nop = spec_of(eis_2lsu_partial, "nop")
        program, _fmt = make_bundle_program(eis_2lsu_partial,
                                            [AsmItem(nop, (), 1)])
        # Pretend the processor defines a different format list.
        from repro.tie.flix import FlixFormat, Slot
        other = FlixFormat("other", format_id=2,
                           slots=[Slot("any", ("any",))])
        report = lint_hazards(program, (other,))
        assert "HZ003" in codes(report)

    def test_branch_offset_beyond_bundle_range(self, eis_2lsu_partial):
        beqz = spec_of(eis_2lsu_partial, "beqz")
        store = spec_of(eis_2lsu_partial, "store_sop_int")
        program, _fmt = make_bundle_program(eis_2lsu_partial, [
            AsmItem(store, (8,), 1), AsmItem(beqz, (8, 600), 1)])
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        found = report.by_code("HZ004")
        assert len(found) == 1
        assert found[0].severity == "error"
        assert "+598" in found[0].message

    def test_multiple_multicycle_ops(self, eis_2lsu_partial):
        flush = spec_of(eis_2lsu_partial, "st_flush")
        program, _fmt = make_bundle_program(eis_2lsu_partial, [
            AsmItem(flush, (), 1), AsmItem(flush, (), 1)])
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        assert "HZ005" in codes(report)

    def test_multiple_control_transfers(self, eis_2lsu_partial):
        beqz = spec_of(eis_2lsu_partial, "beqz")
        j = spec_of(eis_2lsu_partial, "j")
        program, _fmt = make_bundle_program(eis_2lsu_partial, [
            AsmItem(beqz, (8, 0), 1), AsmItem(j, (0,), 1)])
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        assert "HZ006" in codes(report)

    def test_payload_overflow(self, eis_2lsu_partial):
        add = spec_of(eis_2lsu_partial, "add")
        program, _fmt = make_bundle_program(eis_2lsu_partial, [
            AsmItem(add, (8, 2, 3), 1), AsmItem(add, (9, 4, 5), 1),
            AsmItem(add, (10, 6, 7), 1)])
        report = lint_hazards(program, eis_2lsu_partial.flix_formats)
        assert "HZ007" in codes(report)


class TestScalarRanges:
    @pytest.mark.parametrize("mnemonic,operands,fmt_ok", [
        ("beqz", (8, 40000), False),
        ("beqz", (8, 100), True),
    ])
    def test_branch_offset(self, eis_2lsu_partial, mnemonic, operands,
                           fmt_ok):
        spec = spec_of(eis_2lsu_partial, mnemonic)
        program = Program([AsmItem(spec, operands, 1)], {}, "seeded.s")
        report = lint_hazards(program)
        assert ("HZ008" in codes(report)) is not fmt_ok

    def test_signed_immediate_range(self, eis_2lsu_partial):
        addi = spec_of(eis_2lsu_partial, "addi")
        program = Program([AsmItem(addi, (8, 8, 0x10000), 1)], {},
                          "seeded.s")
        assert "HZ008" in codes(lint_hazards(program))

    def test_unsigned_immediate_rejects_negative(self, eis_2lsu_partial):
        ori = spec_of(eis_2lsu_partial, "ori")
        program = Program([AsmItem(ori, (8, 8, -1), 1)], {}, "seeded.s")
        assert "HZ008" in codes(lint_hazards(program))

    def test_clean_scalars(self, asm):
        program = asm.assemble(
            "main:\n  addi a8, a2, 32767\n  ori a8, a8, 65535\n  halt\n")
        assert len(lint_hazards(program)) == 0
