"""Injected-defect differential suite for the deep verification tier.

Each case takes a program (or query) the verifier accepts, injects one
realistic defect, and proves the matching diagnostic family fires —
the regression net around the VAL / RACE / PLAN checkers themselves.
"""

import warnings

import pytest

from repro.analysis import (LintError, LintWarning, lint_or_raise,
                            lint_program)
from repro.configs.catalog import build_processor

from .conftest import codes


@pytest.fixture(scope="module")
def dma_core():
    return build_processor("DBA_2LSU_EIS", prefetcher=True)


def deep_codes(processor, source):
    program = processor.assembler.assemble(source, "defect.s")
    return codes(lint_program(program, processor, deep=True))


COPY_LOOP = (
    "main:\n"
    "  movi a8, 0\n"
    "  li a9, 0x%x\n"
    "loop:\n"
    "  l32i a10, a8, 0\n"
    "  s32i a10, a8, 0\n"
    "  addi a8, a8, 4\n"
    "  bltu a8, a9, loop\n"
    "  halt\n"
)


class TestValFamily:
    def test_overrun_bound_fires_val(self, eis_2lsu_partial):
        size = max(region.base + region.size_bytes
                   for region in eis_2lsu_partial.memory_map
                   if region.base == 0)
        # In-bounds loop: clean.  Bound pushed past the region: VAL004.
        assert not deep_codes(eis_2lsu_partial, COPY_LOOP % 0x4000) \
            & {"VAL001", "VAL002", "VAL003", "VAL004"}
        assert "VAL004" in deep_codes(eis_2lsu_partial,
                                      COPY_LOOP % (size + 0x100))

    def test_broken_scaling_fires_val002(self, eis_2lsu_partial):
        scaled = (
            "main:\n"
            "  slli a8, a2, 2\n"
            "  addi a8, a8, %d\n"
            "  l32i a10, a8, 0\n"
            "  halt\n"
        )
        assert "VAL002" not in deep_codes(eis_2lsu_partial, scaled % 4)
        assert "VAL002" in deep_codes(eis_2lsu_partial, scaled % 2)


class TestRaceFamily:
    def test_removing_the_wait_barrier_fires_race(self, dma_core):
        from repro.core.streaming import streaming_kernel
        source = streaming_kernel("intersection", 2, overlap=True)
        baseline = deep_codes(dma_core, source)
        assert not baseline & {"RACE001", "RACE002", "RACE003"}
        # The defect: the completion poll no longer guards anything.
        mutated = source.replace("  blt a8, a5, wait_dma", "  nop")
        assert mutated != source
        fired = deep_codes(dma_core, mutated)
        assert fired & {"RACE001", "RACE002", "RACE003"}

    def test_shrinking_the_schedule_buffers_fires_race006(self,
                                                          dma_core):
        from repro.analysis import check_transfer_schedule
        from repro.core.streaming import streaming_schedule
        lengths = [(0x4000, 0x4000)] * 3
        good = streaming_schedule(lengths, num_lsus=2)
        assert not check_transfer_schedule(
            good, processor=dma_core, concurrency=4).has_errors
        # The defect: both buffer parities collapsed onto one half.
        bad = [(good[0][0], nbytes, label)
               for _dst, nbytes, label in good]
        report = check_transfer_schedule(bad, processor=dma_core,
                                         concurrency=4)
        assert "RACE006" in codes(report)


class TestPlanFamily:
    def test_corrupting_a_demo_query_fires_plan(self):
        from repro.db.bench import build_demo_table, demo_queries
        from repro.db.engine import Query
        from repro.db.planlint import lint_query
        table = build_demo_table()
        query = next(q for q in demo_queries(table)
                     if q.predicate is not None)
        assert not lint_query(query).has_errors
        # The defect: the predicate names a column that doesn't exist.
        leaf = query.predicate
        while not hasattr(leaf, "column"):
            leaf = leaf.left
        import copy
        broken = copy.copy(leaf)
        broken.column = "ghost"
        assert "PLAN001" in codes(
            lint_query(Query(table, broken)))


class TestEnforcement:
    def test_deep_errors_raise_lint_error(self, eis_2lsu_partial):
        source = (
            "main:\n"
            "  slli a8, a2, 2\n"
            "  addi a8, a8, 2\n"
            "  l32i a10, a8, 0\n"
            "  halt\n"
        )
        program = eis_2lsu_partial.assembler.assemble(source, "bad.s")
        with pytest.raises(LintError) as exc:
            lint_or_raise(program, eis_2lsu_partial, deep=True)
        assert "VAL002" in str(exc.value)

    def test_warn_only_escape_hatch_downgrades(self, eis_2lsu_partial,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_LINT_WARN_ONLY", "1")
        source = (
            "main:\n"
            "  slli a8, a2, 2\n"
            "  addi a8, a8, 2\n"
            "  l32i a10, a8, 0\n"
            "  halt\n"
        )
        program = eis_2lsu_partial.assembler.assemble(source, "bad.s")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = lint_or_raise(program, eis_2lsu_partial,
                                   deep=True)
        assert report.has_errors
        assert any(issubclass(w.category, LintWarning) and
                   "VAL002" in str(w.message) for w in caught)
