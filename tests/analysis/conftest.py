"""Fixtures for the static-analysis tests."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.instructions import build_base_isa


@pytest.fixture()
def asm():
    return Assembler(build_base_isa())


def codes(report):
    """Set of diagnostic codes present in a report."""
    return {diagnostic.code for diagnostic in report}
