"""TIE definition lint (TIE001..TIE010)."""

from repro.analysis import check_extension, lint_processor
from repro.tie.flix import FlixFormat, Slot
from repro.tie.language import (Operand, Operation, RegFile, State,
                                StateUse, TieExtension)

from .conftest import codes


def _noop(ext, core):
    return None


def make_extension(**kwargs):
    defaults = dict(states=(), regfiles=(), operations=(),
                    flix_formats=())
    defaults.update(kwargs)
    return TieExtension("seeded", **defaults)


class TestOperandRules:
    def test_two_immediates(self):
        op = Operation("bad", operands=[Operand("i0", "in", "imm"),
                                        Operand("i1", "in", "imm")],
                       semantics=_noop)
        report = check_extension(make_extension(operations=[op]))
        assert "TIE001" in codes(report)

    def test_immediate_not_last(self):
        op = Operation("bad", operands=[Operand("i", "in", "imm"),
                                        Operand("r", "in", "ar")],
                       semantics=_noop)
        report = check_extension(make_extension(operations=[op]))
        assert "TIE001" in codes(report)

    def test_too_many_registers(self):
        ops = [Operand("r%d" % i, "in", "ar") for i in range(5)]
        op = Operation("bad", operands=ops, semantics=_noop)
        report = check_extension(make_extension(operations=[op]))
        assert "TIE001" in codes(report)


class TestCircuits:
    def test_unknown_primitive_in_circuit(self):
        op = Operation("bad", semantics=_noop,
                       circuit={"warp_core": 1})
        report = check_extension(make_extension(operations=[op]))
        found = report.by_code("TIE002")
        assert len(found) == 1
        assert "warp_core" in found[0].message

    def test_unknown_primitive_in_shared_path(self):
        report = check_extension(make_extension(
            shared_paths={"p": ("flux_capacitor",)}))
        assert "TIE002" in codes(report)

    def test_known_primitives_pass(self):
        op = Operation("good", semantics=_noop,
                       circuit={"adder32": 2}, path=("adder32",))
        report = check_extension(make_extension(operations=[op]))
        assert "TIE002" not in codes(report)


class TestStates:
    def test_state_read_but_never_written(self):
        hidden = State("hidden", read_write=False)
        op = Operation("reader", semantics=_noop,
                       states=[StateUse(hidden, "in")])
        report = check_extension(make_extension(states=[hidden],
                                                operations=[op]))
        found = report.by_code("TIE003")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_wur_access_counts_as_write(self):
        visible = State("visible")  # read_write -> wur reachable
        op = Operation("reader", semantics=_noop,
                       states=[StateUse(visible, "in")])
        report = check_extension(make_extension(states=[visible],
                                                operations=[op]))
        assert "TIE003" not in codes(report)

    def test_unreferenced_state(self):
        orphan = State("orphan")
        report = check_extension(make_extension(states=[orphan]))
        found = report.by_code("TIE004")
        assert len(found) == 1
        assert found[0].severity == "info"

    def test_combinational_cycle(self):
        state = State("s")
        op = Operation("bad", semantics=_noop,
                       states=[StateUse(state, "in"),
                               StateUse(state, "out")])
        report = check_extension(make_extension(states=[state],
                                                operations=[op]))
        found = report.by_code("TIE005")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_inout_is_not_a_cycle(self):
        state = State("s")
        op = Operation("good", semantics=_noop,
                       states=[StateUse(state, "inout")])
        report = check_extension(make_extension(states=[state],
                                                operations=[op]))
        assert "TIE005" not in codes(report)

    def test_undeclared_state(self):
        stray = State("stray")
        op = Operation("bad", semantics=_noop,
                       states=[StateUse(stray, "inout")])
        report = check_extension(make_extension(operations=[op]))
        assert "TIE008" in codes(report)


class TestStructure:
    def test_bad_slot_class(self):
        op = Operation("bad", semantics=_noop, slot_class="warp")
        report = check_extension(make_extension(operations=[op]))
        assert "TIE006" in codes(report)

    def test_negative_extra_cycles(self):
        op = Operation("bad", semantics=_noop, extra_cycles=-1)
        report = check_extension(make_extension(operations=[op]))
        assert "TIE007" in codes(report)

    def test_undeclared_regfile(self):
        rf = RegFile("vec", width_bits=32, size=8, prefix="v")
        op = Operation("bad",
                       operands=[Operand("r", "in", rf)],
                       semantics=_noop)
        report = check_extension(make_extension(operations=[op]))
        assert "TIE008" in codes(report)

    def test_duplicate_format_id(self):
        formats = [FlixFormat("a", 1, [Slot("s", ("any",))]),
                   FlixFormat("b", 1, [Slot("s", ("any",))])]
        report = check_extension(make_extension(flix_formats=formats))
        found = report.by_code("TIE010")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_unknown_slot_kind(self):
        formats = [FlixFormat("a", 1, [Slot("s", ("quantum",))])]
        report = check_extension(make_extension(flix_formats=formats))
        found = report.by_code("TIE010")
        assert len(found) == 1
        assert found[0].severity == "warning"


class TestBuiltinExtensions:
    def test_builtin_extensions_are_clean(self, eis_2lsu_partial):
        report = lint_processor(eis_2lsu_partial)
        assert report.at_least("warning") == []
