"""End-to-end lint: builtin kernels are clean; enforcement works."""

import pytest

from repro.analysis import (LintError, LintWarning, lint_or_raise,
                            lint_processor, lint_program)
from repro.configs.catalog import CONFIG_NAMES, build_processor, has_eis
from repro.core.kernels import builtin_kernel_sources


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_builtin_kernels_have_no_errors(name):
    processor = build_processor(name, compression=has_eis(name))
    for kernel_name, source in builtin_kernel_sources(processor):
        program = processor.assembler.assemble(source, kernel_name)
        report = lint_program(program, processor)
        noisy = report.at_least("warning")
        assert noisy == [], "\n".join(d.format() for d in noisy)


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_builtin_extensions_have_no_errors(name):
    processor = build_processor(name, compression=has_eis(name))
    report = lint_processor(processor)
    noisy = report.at_least("warning")
    assert noisy == [], "\n".join(d.format() for d in noisy)


def test_entry_defaults_to_main_label(eis_2lsu_partial):
    # Code placed before `main` is dead relative to the conventional
    # entry point and must be reported as unreachable.
    program = eis_2lsu_partial.assembler.assemble(
        "prelude:\n  nop\nmain:\n  halt\n")
    report = lint_program(program, eis_2lsu_partial)
    assert report.by_code("CFG001")


def test_lint_or_raise_on_error(eis_2lsu_partial):
    program = eis_2lsu_partial.assembler.assemble(
        "main:\n  addi a2, a2, 1\n")  # falls off the end
    with pytest.raises(LintError, match="CFG002"):
        lint_or_raise(program, eis_2lsu_partial)


def test_lint_or_raise_warns(eis_2lsu_partial):
    program = eis_2lsu_partial.assembler.assemble(
        "main:\n  movi a8, 1\n  movi a8, 2\n  halt\n")
    with pytest.warns(LintWarning, match="DF002"):
        lint_or_raise(program, eis_2lsu_partial)


def test_kernel_runner_lints_on_first_load():
    # run_set_operation assembles through _load_cached_program, which
    # enforces the verifier; a clean run proves the integration.
    from repro.core.kernels import run_set_operation
    processor = build_processor("DBA_2LSU_EIS")
    values, _result = run_set_operation(processor, "intersection",
                                        [1, 2, 3], [2, 3, 4])
    assert values == [2, 3]


def test_lint_without_processor(eis_2lsu_partial):
    # Program-only lint runs the CFG/dataflow/hazard passes and skips
    # memory and TIE checks.
    program = eis_2lsu_partial.assembler.assemble(
        "main:\n  movhi a8, 0x4000\n  l32i a9, a8, 0\n  halt\n")
    report = lint_program(program)
    assert not report.by_code("MEM001")
    report = lint_program(program, eis_2lsu_partial)
    assert report.by_code("MEM001")
