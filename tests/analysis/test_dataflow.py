"""Dataflow checks: use-before-def, dead stores, state uses."""

from repro.analysis import DiagnosticReport, build_cfg, check_dataflow

from .conftest import codes


def lint_dataflow(program, entry=0, entry_live=None, processor=None):
    report = DiagnosticReport()
    check_dataflow(build_cfg(program, entry), report,
                   entry_live=entry_live, processor=processor)
    return report


class TestUseBeforeDef:
    def test_clean_program(self, asm):
        program = asm.assemble(
            "main:\n  movi a8, 7\n  addi a8, a8, 1\n  halt\n")
        assert "DF001" not in codes(lint_dataflow(program))

    def test_read_of_uninitialized_register(self, asm):
        program = asm.assemble("main:\n  addi a9, a8, 1\n  halt\n")
        report = lint_dataflow(program)
        found = report.by_code("DF001")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert "a8" in found[0].message
        assert found[0].line == 2

    def test_argument_registers_assumed_live(self, asm):
        # a2..a7 carry kernel arguments; reading them is fine.
        program = asm.assemble("main:\n  addi a3, a2, 4\n  halt\n")
        assert "DF001" not in codes(lint_dataflow(program))

    def test_entry_live_override(self, asm):
        program = asm.assemble("main:\n  addi a3, a2, 4\n  halt\n")
        report = lint_dataflow(program, entry_live=())
        assert "DF001" in codes(report)

    def test_maybe_uninitialized_on_one_path(self, asm):
        program = asm.assemble(
            "main:\n"
            "  beqz a2, skip\n"
            "  movi a8, 1\n"
            "skip:\n"
            "  addi a9, a8, 1\n"
            "  halt\n")
        assert "DF001" in codes(lint_dataflow(program))

    def test_defined_on_all_paths(self, asm):
        program = asm.assemble(
            "main:\n"
            "  beqz a2, other\n"
            "  movi a8, 1\n"
            "  j join\n"
            "other:\n"
            "  movi a8, 2\n"
            "join:\n"
            "  addi a9, a8, 1\n"
            "  halt\n")
        assert "DF001" not in codes(lint_dataflow(program))


class TestDeadStores:
    def test_overwritten_value_is_dead(self, asm):
        program = asm.assemble(
            "main:\n  movi a8, 1\n  movi a8, 2\n  halt\n")
        report = lint_dataflow(program)
        found = report.by_code("DF002")
        assert len(found) == 1
        assert found[0].line == 2

    def test_exit_values_count_as_live(self, asm):
        # The host reads results out of the register file after halt,
        # so a final write is not a dead store.
        program = asm.assemble("main:\n  movi a2, 42\n  halt\n")
        assert "DF002" not in codes(lint_dataflow(program))

    def test_store_is_not_a_dead_store(self, asm):
        # s32i writes memory, not a register; never flagged.
        program = asm.assemble(
            "main:\n  movi a8, 0\n  s32i a2, a8, 0\n  halt\n")
        assert "DF002" not in codes(lint_dataflow(program))


class TestStateUses:
    def test_state_read_but_never_written(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            "main:\n  rur a2, sop_ptr_a\n  halt\n")
        report = lint_dataflow(program, processor=eis_2lsu_partial)
        found = report.by_code("DF003")
        assert len(found) == 1
        assert "sop_ptr_a" in found[0].message

    def test_wur_satisfies_state_read(self, eis_2lsu_partial):
        program = eis_2lsu_partial.assembler.assemble(
            "main:\n  wur a2, sop_ptr_a\n  rur a3, sop_ptr_a\n  halt\n")
        report = lint_dataflow(program, processor=eis_2lsu_partial)
        assert "DF003" not in codes(report)

    def test_operation_write_satisfies_state_read(self, eis_2lsu_partial):
        # minit writes the merge pipeline states that merge_st reads.
        source = (
            "main:\n"
            "  wur a2, mrg_ptr_a\n"
            "  wur a3, mrg_end_a\n"
            "  wur a4, mrg_ptr_b\n"
            "  wur a5, mrg_end_b\n"
            "  wur a6, mrg_ptr_c\n"
            "  minit\n"
            "  merge_st a8\n"
            "  halt\n")
        program = eis_2lsu_partial.assembler.assemble(source)
        report = lint_dataflow(program, processor=eis_2lsu_partial)
        assert "DF003" not in codes(report)
