"""Static memory checks (MEM001..MEM003)."""

from repro.analysis import DiagnosticReport, build_cfg, check_memory

from .conftest import codes


def lint_memory(processor, source):
    program = processor.assembler.assemble(source, "mem.s")
    report = DiagnosticReport()
    check_memory(build_cfg(program, 0), report, processor)
    return report


class TestResolvableAccesses:
    def test_clean_aligned_access(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 0x100\n"
                             "  l32i a9, a8, 4\n  halt\n")
        assert len(report) == 0

    def test_misaligned_store(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 0x102\n"
                             "  s32i a2, a8, 0\n  halt\n")
        found = report.by_code("MEM002")
        assert len(found) == 1
        assert found[0].severity == "error"
        assert found[0].line == 3

    def test_halfword_alignment(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 0x101\n"
                             "  l16ui a9, a8, 0\n  halt\n")
        assert "MEM002" in codes(report)

    def test_byte_access_never_misaligned(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 0x103\n"
                             "  l8ui a9, a8, 0\n  halt\n")
        assert len(report) == 0

    def test_unmapped_address(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movhi a8, 0x4000\n"
                             "  l32i a9, a8, 0\n  halt\n")
        found = report.by_code("MEM001")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_simulation_headroom_is_a_warning(self, eis_2lsu_partial):
        # DBA_2LSU dmem0 is architecturally 32 KB; the simulator adds
        # 64 KB of headroom, so 0xC000 simulates fine but would fault
        # on the real hardware.
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movhi a8, 0\n"
                             "  ori a8, a8, 0xC000\n"
                             "  l32i a9, a8, 0\n  halt\n")
        found = report.by_code("MEM003")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_runtime_addresses_are_skipped(self, eis_2lsu_partial):
        # a2 is a run-time argument: no static value, no diagnostics.
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  l32i a9, a2, 0\n  halt\n")
        assert len(report) == 0

    def test_value_invalidated_at_join(self, eis_2lsu_partial):
        # a8 differs between the two paths, so the access after the
        # join must not be checked against either constant.
        report = lint_memory(eis_2lsu_partial,
                             "main:\n"
                             "  movi a8, 0x100\n"
                             "  beqz a2, go\n"
                             "  movi a8, 0x102\n"
                             "go:\n"
                             "  l32i a9, a8, 0\n"
                             "  halt\n")
        assert len(report) == 0

    def test_li_expansion_tracks_full_32_bits(self, eis_2lsu_partial):
        # li expands to movhi+ori; the checker follows both halves.
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  li a8, 0x80000004\n"
                             "  l32i a9, a8, 0\n  halt\n")
        assert len(report) == 0

    def test_main_memory_bounds(self, eis_2lsu_partial):
        size = eis_2lsu_partial.config.main_memory_kb * 1024
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  li a8, 0x%x\n"
                             "  l32i a9, a8, 0\n  halt\n"
                             % (0x80000000 + size))
        assert "MEM001" in codes(report)


class _StubConfig:
    def architectural_regions(self):
        return [("dmem0", 0, 0x1000), ("empty", 0x2000, 0),
                ("odd", 0x3000, 6)]


class _StubProcessor:
    config = _StubConfig()
    memory_map = ()


def lint_memory_stub(assembling_processor, source):
    program = assembling_processor.assembler.assemble(source, "mem.s")
    report = DiagnosticReport()
    check_memory(build_cfg(program, 0), report, _StubProcessor())
    return report


class TestEdgeCases:
    def test_negative_offset_in_bounds(self, eis_2lsu_partial):
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 8\n"
                             "  l32i a9, a8, -4\n  halt\n")
        assert len(report) == 0

    def test_negative_offset_wraps_to_oob(self, eis_2lsu_partial):
        # 4 - 16 wraps to 0xFFFFFFF4: aligned, but mapped by nothing.
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  movi a8, 4\n"
                             "  l32i a9, a8, -16\n  halt\n")
        found = report.by_code("MEM001")
        assert len(found) == 1
        assert "MEM002" not in codes(report)

    def test_zero_size_region_admits_nothing(self, eis_2lsu_partial):
        report = lint_memory_stub(eis_2lsu_partial,
                                  "main:\n  movi a8, 0x2000\n"
                                  "  l32i a9, a8, 0\n  halt\n")
        assert "MEM001" in codes(report)

    def test_aligned_straddle_past_region_end(self, eis_2lsu_partial):
        # The 'odd' region is 6 bytes: a word at +4 starts inside but
        # ends outside, and must not be admitted.
        report = lint_memory_stub(eis_2lsu_partial,
                                  "main:\n  movi a8, 0x3004\n"
                                  "  l32i a9, a8, 0\n  halt\n")
        assert "MEM001" in codes(report)
        assert "MEM002" not in codes(report)

    def test_last_word_of_region_is_clean(self, eis_2lsu_partial):
        report = lint_memory_stub(eis_2lsu_partial,
                                  "main:\n  movi a8, 0xFFC\n"
                                  "  l32i a9, a8, 0\n  halt\n")
        assert len(report) == 0

    def test_straddle_architectural_boundary(self, eis_2lsu_partial):
        # 0x7FFE + 4 crosses from the architectural dmem0 into the
        # simulator's headroom: misaligned AND only simulatable.
        arch = dict((name, (base, size)) for name, base, size
                    in eis_2lsu_partial.config.architectural_regions())
        _base, size = arch["dmem0"]
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  li a8, 0x%x\n"
                             "  l32i a9, a8, 0\n  halt\n"
                             % (size - 2))
        assert {"MEM002", "MEM003"} <= codes(report)

    def test_halfword_at_exact_region_end_is_clean(self,
                                                   eis_2lsu_partial):
        arch = dict((name, (base, size)) for name, base, size
                    in eis_2lsu_partial.config.architectural_regions())
        _base, size = arch["dmem0"]
        report = lint_memory(eis_2lsu_partial,
                             "main:\n  li a8, 0x%x\n"
                             "  l16ui a9, a8, 0\n  halt\n"
                             % (size - 2))
        assert len(report) == 0
