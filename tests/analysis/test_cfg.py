"""CFG construction and structural checks (CFG001..CFG003)."""

from repro.analysis import DiagnosticReport, build_cfg, check_structure

from .conftest import codes


def lint_structure(program, entry=0):
    report = DiagnosticReport()
    check_structure(build_cfg(program, entry), report)
    return report


class TestGraph:
    def test_straight_line(self, asm):
        program = asm.assemble("main:\n  nop\n  nop\n  halt\n")
        cfg = build_cfg(program, "main")
        assert cfg.nodes == [0, 1, 2]
        assert cfg.succ[0] == [1]
        assert cfg.succ[2] == []
        assert cfg.reachable() == {0, 1, 2}

    def test_branch_has_two_successors(self, asm):
        program = asm.assemble(
            "main:\n  beqz a2, out\n  nop\nout:\n  halt\n")
        cfg = build_cfg(program, 0)
        assert sorted(cfg.succ[0]) == [1, 2]
        assert cfg.pred[2] == [0, 1]

    def test_loop_back_edge(self, asm):
        program = asm.assemble(
            "main:\nloop:\n  addi a2, a2, -1\n  bnez a2, loop\n  halt\n")
        cfg = build_cfg(program, 0)
        assert 0 in cfg.succ[1]

    def test_call_assumed_to_return(self, asm):
        program = asm.assemble(
            "main:\n  jal fn\n  halt\nfn:\n  ret\n")
        cfg = build_cfg(program, 0)
        assert sorted(cfg.succ[0]) == [1, 2]
        # ret is register-indirect: no static successors.
        assert cfg.succ[2] == []

    def test_entry_by_label(self, asm):
        program = asm.assemble("pre:\n  halt\nmain:\n  halt\n")
        assert build_cfg(program, "main").entry == 1


class TestChecks:
    def test_clean_program(self, asm):
        program = asm.assemble(
            "main:\n  beqz a2, out\n  addi a2, a2, 1\nout:\n  halt\n")
        assert len(lint_structure(program)) == 0

    def test_unreachable_code(self, asm):
        program = asm.assemble(
            "main:\n  halt\ndead:\n  addi a2, a2, 1\n  halt\n")
        report = lint_structure(program)
        assert codes(report) == {"CFG001"}
        diagnostic = report.by_code("CFG001")[0]
        assert diagnostic.severity == "warning"
        assert "dead" in diagnostic.message
        assert diagnostic.line == 4

    def test_fall_off_end(self, asm):
        program = asm.assemble("main:\n  addi a2, a2, 1\n")
        report = lint_structure(program)
        assert codes(report) == {"CFG002"}
        assert report.has_errors

    def test_bad_branch_target_into_bundle_tail(self, asm):
        # The assembler cannot produce this; corrupt the target by hand
        # to model a mis-relocated program.
        program = asm.assemble(
            "main:\n  beqz a2, out\n  nop\nout:\n  halt\n")
        item = program.items[0]
        item.operands = (item.operands[0], len(program.items) + 5)
        report = lint_structure(program)
        assert "CFG003" in codes(report)
        assert report.has_errors

    def test_unreachable_suppressed_with_indirect_jumps(self, asm):
        program = asm.assemble(
            "main:\n  jalr a0, a2, 0\nisland:\n  halt\n")
        report = lint_structure(program)
        assert "CFG001" not in codes(report)
