"""Unit tests for the hardware sorting networks."""

import itertools
import random

import pytest

from repro.core.sortnet import (MERGE8_SCHEDULE, SORT4_SCHEDULE,
                                comparator_count_merge8,
                                comparator_count_sort4, merge8,
                                network_depth, sort4)


class TestSort4:
    def test_all_permutations(self):
        # 4! = 24 inputs: the zero-one principle not even needed
        for perm in itertools.permutations((1, 2, 3, 4)):
            assert sort4(list(perm)) == [1, 2, 3, 4]

    def test_duplicates(self):
        assert sort4([2, 1, 2, 1]) == [1, 1, 2, 2]
        assert sort4([5, 5, 5, 5]) == [5, 5, 5, 5]

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            sort4([1, 2, 3])

    def test_is_batcher_network(self):
        assert comparator_count_sort4() == 5
        assert network_depth(SORT4_SCHEDULE, 4) == 3


class TestMerge8:
    def test_exhaustive_zero_one(self):
        # Zero-one principle: a merge network is correct iff it merges
        # all 0/1 sorted inputs correctly (2^4 x 2^4 combinations of
        # sorted 0/1 vectors is small enough to enumerate by counts).
        for zeros_a in range(5):
            for zeros_b in range(5):
                a = [0] * zeros_a + [1] * (4 - zeros_a)
                b = [0] * zeros_b + [1] * (4 - zeros_b)
                low, high = merge8(a, b)
                assert list(low) + list(high) == sorted(a + b)

    def test_random_values(self):
        rng = random.Random(1)
        for _ in range(500):
            a = sorted(rng.randrange(1000) for _ in range(4))
            b = sorted(rng.randrange(1000) for _ in range(4))
            low, high = merge8(a, b)
            assert list(low) + list(high) == sorted(a + b)

    def test_halves_are_sorted(self):
        low, high = merge8([1, 5, 9, 13], [2, 6, 10, 14])
        assert low == sorted(low)
        assert high == sorted(high)
        assert max(low) <= min(high)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            merge8([1, 2, 3], [1, 2, 3, 4])

    def test_is_odd_even_merge(self):
        assert comparator_count_merge8() == 9
        assert network_depth(MERGE8_SCHEDULE, 8) == 3


class TestNetworkDepth:
    def test_empty_schedule(self):
        assert network_depth((), 4) == 0

    def test_serial_chain(self):
        assert network_depth(((0, 1), (1, 2), (2, 3)), 4) == 3

    def test_parallel_stage(self):
        assert network_depth(((0, 1), (2, 3)), 4) == 1
