"""Tests for the D8 compression extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import (build_compression_extension,
                                    compress_d8, compression_ratio,
                                    decompress_d8, run_decompress)
from repro.cpu import CoreConfig, Processor
from repro.workloads.sets import generate_rid_list

sorted_rids = st.lists(st.integers(min_value=0, max_value=2**32 - 2),
                       unique=True, max_size=80).map(sorted)


@pytest.fixture(scope="module")
def processor():
    return Processor(CoreConfig("c", dmem0_kb=64, sim_headroom_kb=64),
                     extensions=[build_compression_extension()])


class TestFormat:
    def test_small_deltas_pack_four_per_word(self):
        values = [10, 11, 12, 13, 14, 15, 16, 17, 18]
        words = compress_d8(values)
        # base + ceil(8/4) delta words
        assert len(words) == 3

    def test_escape_for_wide_gaps(self):
        values = [1, 2, 100_000, 100_001]
        words = compress_d8(values)
        assert 100_000 in words  # absolute restart word present
        assert decompress_d8(words, 4) == values

    def test_empty_and_singleton(self):
        assert compress_d8([]) == []
        assert decompress_d8(compress_d8([42]), 1) == [42]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            compress_d8([3, 1])

    def test_typical_rid_list_compresses_well(self):
        rids = generate_rid_list(5000, table_rows=200_000, seed=1)
        assert compression_ratio(rids) > 2.5

    @given(values=sorted_rids)
    @settings(max_examples=200)
    def test_round_trip_property(self, values):
        words = compress_d8(values)
        assert decompress_d8(words, len(values)) == values


class TestInstruction:
    def test_on_core_decompression(self, processor):
        rids = generate_rid_list(2000, table_rows=60_000, seed=2)
        output, stats = run_decompress(processor, rids)
        assert output == rids
        # about one value per cycle through the 4-lane prefix network
        assert stats.cycles < 2.0 * len(rids)

    def test_decoder_state_resets_between_runs(self, processor):
        first = generate_rid_list(100, table_rows=5000, seed=3)
        second = generate_rid_list(120, table_rows=5000, seed=4)
        out1, _ = run_decompress(processor, first)
        out2, _ = run_decompress(processor, second)
        assert out1 == first
        assert out2 == second

    def test_empty_list(self, processor):
        output, _stats = run_decompress(processor, [])
        assert output == []

    def test_escape_heavy_stream(self, processor):
        values = [i * 10_000 for i in range(1, 200)]
        output, _stats = run_decompress(processor, values)
        assert output == values

    def test_netlist_is_cheap(self):
        extension = build_compression_extension()
        netlist = extension.netlist()
        from repro.synth.area import BASE_CORE_GE
        assert netlist.total_ge() < 0.1 * BASE_CORE_GE


class TestBandwidthPayoff:
    def test_dma_traffic_shrinks(self):
        """The point of decompressing on-core: the prefetcher moves
        ~3-4x fewer bytes per RID list."""
        from repro.cpu.interconnect import Interconnect
        rids = generate_rid_list(4000, table_rows=150_000, seed=5)
        network = Interconnect()
        raw_cycles = network.transfer_cycles(4 * len(rids))
        compressed_cycles = network.transfer_cycles(
            4 * len(compress_d8(rids)))
        assert compressed_cycles < 0.45 * raw_cycles
