"""Unit tests for the SOP all-to-all comparison semantics.

These are the "dedicated unit tests with pre-specified values —
especially considering corner cases" the paper's verification flow
prescribes (Section 3.1), applied to the comparison logic.
"""

from repro.core.common import SENTINEL
from repro.core.sop import (comparator_matrix, sop_difference,
                            sop_intersect, sop_union, valid_count)

S = SENTINEL


class TestValidCount:
    def test_full_window(self):
        assert valid_count([1, 2, 3, 4]) == 4

    def test_partial_window(self):
        assert valid_count([1, 2, S, S]) == 2

    def test_empty_window(self):
        assert valid_count([S, S, S, S]) == 0


class TestIntersect:
    def test_disjoint_interleaved(self):
        step = sop_intersect([1, 3, 5, 7], [2, 4, 6, 8])
        assert step.output == []
        # t = min(7, 8) = 7: consumes all of A, three of B
        assert step.consumed_a == 4
        assert step.consumed_b == 3

    def test_identical_windows(self):
        step = sop_intersect([1, 2, 3, 4], [1, 2, 3, 4])
        assert step.output == [1, 2, 3, 4]
        assert step.consumed == 8

    def test_partial_overlap(self):
        step = sop_intersect([1, 2, 3, 10], [2, 3, 11, 12])
        # t = min(10, 12) = 10: A consumes 4, B consumes 2
        assert step.output == [2, 3]
        assert step.consumed_a == 4
        assert step.consumed_b == 2

    def test_one_side_strictly_smaller(self):
        step = sop_intersect([1, 2, 3, 4], [10, 11, 12, 13])
        assert step.output == []
        assert step.consumed_a == 4
        assert step.consumed_b == 0

    def test_partially_valid_windows(self):
        step = sop_intersect([5, 9, S, S], [5, 7, 9, S])
        # valid: A=2, B=3; t = min(9, 9) = 9: both fully consumed
        assert step.output == [5, 9]
        assert step.consumed_a == 2
        assert step.consumed_b == 3

    def test_empty_against_data(self):
        step = sop_intersect([S, S, S, S], [1, 2, 3, 4])
        assert step.output == []
        assert step.consumed_b == 4  # t is B's max: B drains

    def test_match_at_threshold(self):
        step = sop_intersect([7, 8, 9, 10], [10, 20, 30, 40])
        assert step.output == [10]
        assert step.consumed_a == 4
        assert step.consumed_b == 1


class TestUnion:
    def test_disjoint_capped_at_result_width(self):
        step = sop_union([1, 3, 5, 7], [2, 4, 6, 8])
        # 7 candidates <= t=7, but the Result states hold only four
        assert step.output == [1, 2, 3, 4]
        assert step.consumed_a == 2
        assert step.consumed_b == 2

    def test_identical_no_cap_needed(self):
        step = sop_union([1, 2, 3, 4], [1, 2, 3, 4])
        assert step.output == [1, 2, 3, 4]
        assert step.consumed == 8

    def test_dedup_across_sides(self):
        step = sop_union([1, 2, 9, 10], [2, 3, 9, 20])
        # t = 10: candidates 1,2,3,9 (10 cut by the width cap)
        assert step.output == [1, 2, 3, 9]
        assert step.consumed_a == 3
        assert step.consumed_b == 3

    def test_cap_preserves_pair_consumption(self):
        step = sop_union([1, 2, 3, 4], [4, 5, 6, 7])
        # t = 4; candidates 1,2,3,4: exactly four distinct, and the
        # value 4 is consumed on BOTH sides in the same step
        assert step.output == [1, 2, 3, 4]
        assert step.consumed_a == 4
        assert step.consumed_b == 1

    def test_one_side_empty(self):
        step = sop_union([S, S, S, S], [5, 6, 7, 8])
        assert step.output == [5, 6, 7, 8]
        assert step.consumed_b == 4


class TestDifference:
    def test_removes_matches(self):
        step = sop_difference([1, 2, 3, 10], [2, 3, 11, 12])
        # 10 is provably absent from B: everything left in B is > 12
        assert step.output == [1, 10]
        assert step.consumed_a == 4
        assert step.consumed_b == 2

    def test_identical_yields_nothing(self):
        step = sop_difference([1, 2, 3, 4], [1, 2, 3, 4])
        assert step.output == []

    def test_b_empty_passes_a_through(self):
        step = sop_difference([1, 2, 3, 4], [S, S, S, S])
        assert step.output == [1, 2, 3, 4]

    def test_a_empty_yields_nothing(self):
        step = sop_difference([S, S, S, S], [1, 2, 3, 4])
        assert step.output == []
        assert step.consumed_b == 4

    def test_only_consumed_prefix_emitted(self):
        step = sop_difference([1, 5, 20, 30], [6, 7, 8, 9])
        # t = 9: A consumes 1, 5 only
        assert step.output == [1, 5]
        assert step.consumed_a == 2
        assert step.consumed_b == 4


class TestComparatorMatrix:
    def test_matrix_signs(self):
        matrix = comparator_matrix([1, 2, 3, 4], [2, 2, 2, 2])
        assert matrix[0] == [-1, -1, -1, -1]
        assert matrix[1] == [0, 0, 0, 0]
        assert matrix[2] == [1, 1, 1, 1]

    def test_matrix_shape(self):
        matrix = comparator_matrix([1] * 4, [1] * 4)
        assert len(matrix) == 4
        assert all(len(row) == 4 for row in matrix)
