"""Tests for the decompress-then-intersect streaming pipeline (E10)."""

import pytest

from repro.configs.catalog import build_processor
from repro.core.streaming import (run_compressed_streaming_set_operation,
                                  run_streaming_set_operation)
from repro.cpu.interconnect import Interconnect
from repro.workloads.sets import generate_set_pair


@pytest.fixture(scope="module")
def processor():
    return build_processor("DBA_2LSU_EIS", prefetcher=True,
                           compression=True, sim_headroom_kb=512)


def dense_sets(size, selectivity=0.5, seed=5):
    return generate_set_pair(size, selectivity=selectivity, seed=seed,
                             max_value=16 * size)


class TestCorrectness:
    @pytest.mark.parametrize("which", ["intersection", "union",
                                       "difference"])
    def test_matches_ground_truth(self, processor, which):
        set_a, set_b = dense_sets(9000)
        expected = {
            "intersection": sorted(set(set_a) & set(set_b)),
            "union": sorted(set(set_a) | set(set_b)),
            "difference": sorted(set(set_a) - set(set_b)),
        }[which]
        result, _stats = run_compressed_streaming_set_operation(
            processor, which, set_a, set_b)
        assert result == expected

    def test_blocking_variant(self, processor):
        set_a, set_b = dense_sets(6000, seed=7)
        result, _stats = run_compressed_streaming_set_operation(
            processor, "intersection", set_a, set_b, overlap=False)
        assert result == sorted(set(set_a) & set(set_b))

    def test_requires_compression_extension(self):
        plain = build_processor("DBA_2LSU_EIS", prefetcher=True)
        with pytest.raises(ValueError, match="compression"):
            run_compressed_streaming_set_operation(
                plain, "intersection", [1, 2], [2, 3])

    def test_sparse_sets_rejected_loudly(self, processor):
        # 32-bit random sets have huge deltas: every value escapes and
        # the compressed chunk outgrows its buffer
        set_a, set_b = generate_set_pair(8000, selectivity=0.5, seed=1)
        with pytest.raises(ValueError, match="compressed"):
            run_compressed_streaming_set_operation(
                processor, "intersection", set_a, set_b)


class TestTrafficAndCrossover:
    def test_dma_traffic_is_quartered(self, processor):
        set_a, set_b = dense_sets(12000)
        run_compressed_streaming_set_operation(processor,
                                               "intersection", set_a,
                                               set_b)
        compressed_bytes = processor.prefetcher.interconnect.bytes_moved
        run_streaming_set_operation(processor, "intersection", set_a,
                                    set_b)
        raw_bytes = processor.prefetcher.interconnect.bytes_moved
        assert raw_bytes > 3.5 * compressed_bytes

    def test_crossover_on_narrow_interconnect(self):
        """Raw wins on a wide NoC; compressed wins when the bus is the
        bottleneck — the E10 result."""
        set_a, set_b = dense_sets(8000, seed=9)
        cycles = {}
        for label, bpc in (("wide", 16), ("narrow", 1)):
            processor = build_processor(
                "DBA_2LSU_EIS", prefetcher=True, compression=True,
                sim_headroom_kb=512,
                interconnect=Interconnect(bytes_per_cycle=bpc))
            _r, raw = run_streaming_set_operation(
                processor, "intersection", set_a, set_b)
            _r, compressed = run_compressed_streaming_set_operation(
                processor, "intersection", set_a, set_b)
            cycles[label] = (raw.cycles, compressed.cycles)
        wide_raw, wide_compressed = cycles["wide"]
        narrow_raw, narrow_compressed = cycles["narrow"]
        assert wide_raw < wide_compressed        # decode not free
        assert narrow_compressed < narrow_raw    # bandwidth bound
