"""Differential tests for the calibrated cost model.

The contract under test: for every builtin set/sort kernel on every
catalog configuration, the cost model returns the exact result list
and the exact ISS cycle count — not an approximation.  Every trial
here runs with ``verify=True``, which shadows each prediction with a
real ISS run and counts any divergence as a mismatch.
"""

import random

import pytest

from repro.configs.catalog import build_processor
from repro.core.costmodel import (CostModel, calibration_cache_size,
                                  clear_calibration_cache,
                                  config_signature, default_cost_model,
                                  eis_set_features, set_result,
                                  solve_exact)
from repro.cpu import CacheConfig, CoreConfig, Processor
from repro.db import QueryExecutor, QueryStats
from repro.workloads.sets import generate_set_pair
from repro.workloads.sorting import random_values

SET_OPS = ("intersection", "union", "difference")


def _trial_pairs(rng, trials):
    """Deterministic operand pairs incl. adversarial edge shapes."""
    pairs = [
        ([], []),
        ([], [3, 7, 9]),
        ([4, 8], []),
        ([1, 2, 3, 4], [1, 2, 3, 4]),
        ([1, 2, 3, 4], [10, 20, 30, 40]),
        ([1], [1]),
        (list(range(0, 40, 2)), list(range(1, 41, 2))),
    ]
    for _ in range(trials):
        a, b = generate_set_pair(rng.randrange(1, 260),
                                 selectivity=rng.random(),
                                 seed=rng.randrange(10 ** 6))
        pairs.append((a[:rng.randrange(0, len(a) + 1)], b))
    return pairs


class TestPrimitives:
    def test_solve_exact_solves_consistent_system(self):
        rows = [[1, 0], [0, 1], [1, 1]]
        coefficients = solve_exact(rows, [5, 7, 12])
        assert [int(c) for c in coefficients] == [5, 7]

    def test_solve_exact_rejects_inconsistent_system(self):
        assert solve_exact([[1, 0], [0, 1], [1, 1]], [5, 7, 13]) is None

    def test_set_result_matches_set_algebra(self):
        rng = random.Random(3)
        for _ in range(10):
            a, b = generate_set_pair(rng.randrange(1, 200),
                                     selectivity=rng.random(),
                                     seed=rng.randrange(10 ** 6))
            assert set_result("intersection", a, b) == \
                sorted(set(a) & set(b))
            assert set_result("union", a, b) == sorted(set(a) | set(b))
            assert set_result("difference", a, b) == \
                sorted(set(a) - set(b))

    def test_eis_walk_output_count_matches_result(self):
        rng = random.Random(4)
        for partial in (True, False):
            for which in SET_OPS:
                for a, b in _trial_pairs(rng, 6):
                    _features, total = eis_set_features(
                        which, a, b, partial)
                    assert total == len(set_result(which, a, b))

    def test_config_signature_covers_catalog(self, eis_2lsu_partial,
                                             eis_1lsu_partial, mini_108):
        signatures = {config_signature(p) for p in (
            eis_2lsu_partial, eis_1lsu_partial, mini_108)}
        assert None not in signatures
        assert len(signatures) == 3

    def test_config_signature_refuses_caches(self):
        cached = Processor(CoreConfig(
            "cached", dmem0_kb=16, sim_headroom_kb=0,
            dcache=CacheConfig("d", 1024, 2, 16, miss_penalty=6)))
        assert config_signature(cached) is None


class TestDifferentialExactness:
    """Every kernel, every catalog config: predicted == simulated."""

    @pytest.mark.parametrize("which", SET_OPS)
    def test_eis_set_kernels(self, all_eis_processors, which):
        model = CostModel(verify=True)
        rng = random.Random(hash(which) & 0xFFFF)
        for (name, partial), processor in all_eis_processors.items():
            for a, b in _trial_pairs(rng, 5):
                values, cycles, source = model.set_operation(
                    processor, which, a, b)
                assert values == set_result(which, a, b)
                assert source == "costmodel", (name, partial)
        stats = model.stats()
        assert stats["mismatches"] == 0
        assert stats["fallbacks"] == 0
        assert stats["calibration_failures"] == 0

    @pytest.mark.parametrize("which", SET_OPS)
    def test_scalar_set_kernels(self, mini_108, dba_1lsu, which):
        model = CostModel(verify=True)
        rng = random.Random(hash(which) & 0xFFF)
        for processor in (mini_108, dba_1lsu):
            for a, b in _trial_pairs(rng, 4):
                values, cycles, source = model.set_operation(
                    processor, which, a, b)
                assert values == set_result(which, a, b)
                assert source == "costmodel"
        stats = model.stats()
        assert stats["mismatches"] == 0
        assert stats["fallbacks"] == 0

    def test_eis_merge_sort(self, all_eis_processors):
        model = CostModel(verify=True)
        rng = random.Random(17)
        lengths = [0, 1, 3, 4, 5, 16, 65, 130]
        lengths += [rng.randrange(1, 400) for _ in range(4)]
        for (_name, _partial), processor in all_eis_processors.items():
            for length in lengths:
                values = random_values(length,
                                       seed=rng.randrange(10 ** 6))
                output, cycles, source = model.merge_sort(processor,
                                                          values)
                assert output == sorted(values)
                assert source == "costmodel"
        assert model.stats()["mismatches"] == 0
        assert model.stats()["fallbacks"] == 0

    def test_scalar_merge_sort(self, mini_108, dba_1lsu):
        model = CostModel(verify=True)
        rng = random.Random(19)
        for processor in (mini_108, dba_1lsu):
            for length in (1, 2, 7, 33, 100):
                values = random_values(length,
                                       seed=rng.randrange(10 ** 6))
                output, cycles, source = model.merge_sort(processor,
                                                          values)
                assert output == sorted(values)
                assert source == "costmodel"
        assert model.stats()["mismatches"] == 0

    def test_scalar_empty_sort_costs_zero_like_iss(self, mini_108):
        model = CostModel()
        output, cycles, source = model.merge_sort(mini_108, [])
        assert output == [] and cycles == 0


class TestFallbacks:
    def test_cached_config_falls_back_to_iss(self):
        cached = Processor(CoreConfig(
            "cached", dmem0_kb=16, sim_headroom_kb=0,
            dcache=CacheConfig("d", 1024, 2, 16, miss_penalty=6)))
        model = CostModel()
        values, cycles, source = model.set_operation(
            cached, "intersection", [1, 2, 3], [2, 3, 4])
        assert source == "iss"
        assert values == [2, 3]
        assert cycles > 0
        assert model.stats()["fallbacks"] == 1
        assert model.stats()["hits"] == 0

    def test_disabled_model_uses_iss(self, eis_2lsu_partial):
        model = CostModel(enabled=False)
        values, cycles, source = model.set_operation(
            eis_2lsu_partial, "union", [1, 3], [2, 3])
        assert source == "iss"
        assert values == [1, 2, 3]

    def test_armed_fault_hook_forces_iss(self, eis_2lsu_partial,
                                         monkeypatch):
        model = CostModel()
        monkeypatch.setattr(eis_2lsu_partial, "_fault_hook",
                            lambda *a: None, raising=False)
        _values, _cycles, source = model.set_operation(
            eis_2lsu_partial, "intersection", [1, 2], [2, 3])
        assert source == "iss"

    def test_calibrations_are_shared_across_instances(
            self, eis_2lsu_partial):
        clear_calibration_cache()
        try:
            first = CostModel()
            first.set_operation(eis_2lsu_partial, "intersection",
                                [1, 2, 3], [2, 3, 4])
            size = calibration_cache_size()
            assert size >= 1
            second = CostModel()
            second.set_operation(eis_2lsu_partial, "intersection",
                                 [5, 6], [6, 7])
            assert calibration_cache_size() == size
            assert second.stats()["calibrations"] == 0
            assert second.stats()["hits"] == 1
        finally:
            clear_calibration_cache()

    def test_default_cost_model_is_shared(self):
        assert default_cost_model() is default_cost_model()


class TestExecutorIntegration:
    """ISS and cost-model execution paths agree end to end."""

    def test_executor_paths_agree(self, eis_2lsu_partial):
        from repro.db import And, Eq, Range, Table
        rng = random.Random(23)
        n = 500
        table = Table("t", {
            "k": [rng.randrange(5) for _ in range(n)],
            "v": [rng.randrange(900) for _ in range(n)],
        })
        table.create_index("k")
        table.create_index("v")
        predicate = And(Eq("k", 2), Range("v", 100, 700))
        iss = QueryExecutor(eis_2lsu_partial)
        fast = QueryExecutor(eis_2lsu_partial,
                             cost_model=CostModel())
        rids_iss, stats_iss = iss.where(table, predicate)
        rids_fast, stats_fast = fast.where(table, predicate)
        assert rids_fast == rids_iss
        assert stats_fast.cycles == stats_iss.cycles
        assert stats_iss.cycles_by_source["costmodel"] == 0
        assert stats_fast.cycles_by_source["iss"] == 0
        assert stats_fast.cycles_by_source["costmodel"] == \
            stats_fast.cycles

        ordered_iss, sort_iss = iss.order_by(table, rids_iss, "v")
        ordered_fast, sort_fast = fast.order_by(table, rids_fast, "v")
        assert ordered_fast == ordered_iss
        assert sort_fast.cycles == sort_iss.cycles

    def test_short_circuit_is_identical_on_both_paths(
            self, eis_2lsu_partial):
        for cost_model in (None, CostModel()):
            executor = QueryExecutor(eis_2lsu_partial,
                                     cost_model=cost_model)
            stats = QueryStats()
            assert executor.set_operation("intersection", [], [1, 2],
                                          stats) == []
            assert executor.set_operation("union", [], [1, 2],
                                          stats) == [1, 2]
            assert executor.set_operation("difference", [1, 2], [],
                                          stats) == [1, 2]
            assert stats.short_circuits == 3
            assert stats.cycles == 0
            assert stats.set_operations == 0
