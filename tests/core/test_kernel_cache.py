"""Kernel-cache hardening: validate on lookup, rebuild on corruption.

Satellite contract (docs/ROBUSTNESS.md): a corrupted or stale cache
entry costs a recompile and bumps the ``invalid`` counter — it never
crashes a run, and never silently executes the wrong kernel.
"""

import pytest

from repro.configs.catalog import build_processor
from repro.core.kernels import (PortableProgram, _PORTABLE_CACHE,
                                clear_portable_cache, load_cached_kernel,
                                portable_cache_stats)

SOURCE = """
main:
  movi a2, 0
  movi a3, 25
loop:
  addi a2, a2, 1
  bltu a2, a3, loop
  halt
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_portable_cache()
    yield
    clear_portable_cache()


def _run(processor):
    program = load_cached_kernel(processor, "cache-test", SOURCE)
    result = processor.run(entry="main")
    assert result.reg("a2") == 25
    return program


class TestHappyPath:
    def test_hit_and_miss_accounting(self):
        first = build_processor("DBA_1LSU")
        second = build_processor("DBA_1LSU")
        _run(first)
        _run(second)
        stats = portable_cache_stats()
        assert stats == {"hits": 1, "misses": 1, "invalid": 0}

    def test_per_processor_rerun_revalidates_for_free(self):
        processor = build_processor("DBA_1LSU")
        program = _run(processor)
        assert _run(processor) is program
        assert portable_cache_stats()["invalid"] == 0


class TestPortableValidation:
    def test_fingerprint_mismatch_rebuilds(self):
        processor = build_processor("DBA_1LSU")
        _run(processor)
        (portable,) = _PORTABLE_CACHE.values()
        portable.fingerprint = "0" * 64  # bitrot in the digest
        fresh = build_processor("DBA_1LSU")
        _run(fresh)
        stats = portable_cache_stats()
        assert stats["invalid"] == 1
        assert stats["misses"] == 2  # rebuilt from source

    def test_corrupted_entries_rebuild(self):
        processor = build_processor("DBA_1LSU")
        _run(processor)
        (portable,) = _PORTABLE_CACHE.values()
        portable.entries = portable.entries + (("garbage",),)
        fresh = build_processor("DBA_1LSU")
        _run(fresh)
        assert portable_cache_stats()["invalid"] == 1

    def test_out_of_range_label_rebuilds(self):
        processor = build_processor("DBA_1LSU")
        _run(processor)
        (portable,) = _PORTABLE_CACHE.values()
        portable.labels["main"] = 10_000
        portable.fingerprint = portable.compute_fingerprint()
        fresh = build_processor("DBA_1LSU")
        _run(fresh)
        assert portable_cache_stats()["invalid"] == 1

    def test_validate_never_raises(self):
        processor = build_processor("DBA_1LSU")
        program = processor.assembler.assemble(SOURCE, "v")
        portable = PortableProgram(program)
        assert portable.validate()
        portable.entries = None  # worst-case structural damage
        assert portable.validate() is False


class TestPerProcessorValidation:
    def test_foreign_program_is_rejected_and_rebuilt(self):
        """A cache entry bound to another core must not be reused —
        TIE executors close over per-core state."""
        donor = build_processor("DBA_1LSU")
        donor_program = _run(donor)
        victim = build_processor("DBA_1LSU")
        # seed the victim's cache with the donor's bound program
        victim._kernel_cache = {
            "cache-test": (donor_program, victim.config.name,
                           donor._kernel_cache["cache-test"][2])}
        program = _run(victim)
        assert program is not donor_program
        assert portable_cache_stats()["invalid"] >= 1

    def test_config_mismatch_is_rejected(self):
        processor = build_processor("DBA_1LSU")
        program = _run(processor)
        processor._kernel_cache["cache-test"] = (
            program, "108Mini", processor._kernel_cache["cache-test"][2])
        _run(processor)
        assert portable_cache_stats()["invalid"] >= 1

    def test_cache_entry_shape(self):
        processor = build_processor("DBA_1LSU")
        program = _run(processor)
        entry = processor._kernel_cache["cache-test"]
        assert entry[0] is program
        assert entry[1] == "DBA_1LSU"
        assert isinstance(entry[2], tuple)
