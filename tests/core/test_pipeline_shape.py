"""Scheduling-shape checks of the kernel core loops (D2).

Verifies the paper's cycle-accounting claims about the EIS loops:

* Figure 11 / Section 4: one unrolled iteration of the sorted-set core
  loop costs ~2.03 cycles on two LSUs (two bundles plus an amortized
  back jump),
* Figure 10: loads and stores alternate so one 128-bit memory transfer
  happens per cycle in steady state.
"""

import pytest

from repro.core.kernels import run_set_operation
from repro.cpu import PipelineTracer
from repro.workloads.sets import generate_set_pair


@pytest.fixture(scope="module")
def traced_run():
    from repro.configs.catalog import build_processor
    from repro.core.kernels import set_operation_layout
    processor = build_processor("DBA_2LSU_EIS", partial_load=True)
    set_a, set_b = generate_set_pair(2000, selectivity=0.5, seed=3)
    run_set_operation(processor, "intersection", set_a, set_b)
    base_a, base_b, base_c = set_operation_layout(processor, len(set_a),
                                                  len(set_b))
    tracer = PipelineTracer(limit=5000)
    stats = processor.run(entry="main", trace=tracer, regs={
        "a2": base_a, "a3": base_a + len(set_a) * 4,
        "a4": base_b, "a5": base_b + len(set_b) * 4, "a6": base_c})
    return processor, tracer, stats


class TestFigure11Schedule:
    def test_iteration_costs_two_point_o_three(self, traced_run):
        _processor, tracer, _stats = traced_run
        per_iteration = tracer.loop_cycles_per_iteration(
            "{store_sop_int;beqz}")
        assert per_iteration == pytest.approx(2.03, abs=0.03)

    def test_bundles_alternate(self, traced_run):
        _processor, tracer, _stats = traced_run
        names = [event[2] for event in tracer.issue_events()[30:90]]
        sop_positions = [i for i, name in enumerate(names)
                         if name == "{store_sop_int;beqz}"]
        for position in sop_positions[:-1]:
            if position + 1 < len(names):
                follower = names[position + 1]
                assert follower in ("{ld_ldp_shuffle}", "j")

    def test_no_issue_gaps_in_steady_state(self, traced_run):
        _processor, tracer, _stats = traced_run
        gaps = tracer.issue_gaps()[30:200]
        # fully pipelined: every cycle issues (gap 1); the back jump
        # costs a single extra issue, not a bubble
        assert max(gaps) <= 1


class TestMemoryPortUsage:
    def test_both_lsus_loaded_evenly(self, traced_run):
        processor, _tracer, stats = traced_run
        loads = stats.stats["lsu_loads"]
        assert loads[0] > 0 and loads[1] > 0
        # set A streams through LSU0, set B through LSU1
        assert loads[0] == pytest.approx(loads[1], rel=0.1)

    def test_result_stream_stores_through_lsu1(self, traced_run):
        processor, _tracer, stats = traced_run
        stores = stats.stats["lsu_stores"]
        # results live in dmem1 on the 2-LSU configuration (Figure 9)
        assert stores[1] > 0
        assert stores[0] == 0
