"""Unit tests of the EIS datapath state machines, op by op."""

import pytest

from repro.core.common import SENTINEL
from repro.core.datapath import MergeDatapath, SetDatapath
from repro.cpu import CoreConfig, Processor

S = SENTINEL


@pytest.fixture()
def core():
    processor = Processor(CoreConfig("t", dmem0_kb=16, num_lsus=1,
                                     lsu_port_bits=128,
                                     sim_headroom_kb=0))
    return processor


def primed(core, values_a, values_b, partial=True):
    """A SetDatapath with streams staged in memory and pointers set."""
    dp = SetDatapath(num_lsus=1, partial_load=partial)
    base_a, base_b = 0x0, 0x1000
    if values_a:
        core.write_words(base_a, values_a)
    if values_b:
        core.write_words(base_b, values_b)
    dp.ptr_a.value = base_a
    dp.end_a.value = base_a + 4 * len(values_a)
    dp.ptr_b.value = base_b
    dp.end_b.value = base_b + 4 * len(values_b)
    dp.ptr_c.value = 0x2000
    return dp


class TestLd:
    def test_full_block(self, core):
        dp = primed(core, [1, 2, 3, 4, 5], [])
        dp.op_ld(core, "a")
        assert dp.load_a.value == [1, 2, 3, 4]
        assert dp.load_cnt_a.value == 4
        assert dp.ptr_a.value == 16

    def test_tail_block_masked_with_sentinels(self, core):
        dp = primed(core, [1, 2], [])
        dp.op_ld(core, "a")
        assert dp.load_a.value == [1, 2, S, S]
        assert dp.load_cnt_a.value == 2

    def test_noop_when_stage_occupied(self, core):
        dp = primed(core, [1, 2, 3, 4, 5, 6, 7, 8], [])
        dp.op_ld(core, "a")
        dp.op_ld(core, "a")  # stage still holds 4: must not advance
        assert dp.ptr_a.value == 16

    def test_noop_when_exhausted(self, core):
        dp = primed(core, [], [])
        dp.op_ld(core, "a")
        assert dp.load_cnt_a.value == 0


class TestLdp:
    def test_fills_empty_window(self, core):
        dp = primed(core, [1, 2, 3, 4], [])
        dp.op_ld(core, "a")
        dp.op_ldp(core, "a")
        assert dp.word_a.value == [1, 2, 3, 4]
        assert dp.load_cnt_a.value == 0

    def test_partial_refill_tops_up(self, core):
        dp = primed(core, [1, 2, 3, 4, 5, 6], [], partial=True)
        dp.op_ld(core, "a")
        dp.op_ldp(core, "a")
        dp.word_a.value = [3, 4, S, S]  # two lanes consumed
        dp.op_ld(core, "a")
        dp.op_ldp(core, "a")
        assert dp.word_a.value == [3, 4, 5, 6]

    def test_nonpartial_waits_for_full_drain(self, core):
        dp = primed(core, [1, 2, 3, 4, 5, 6, 7, 8], [], partial=False)
        dp.op_ld(core, "a")
        dp.op_ldp(core, "a")
        dp.word_a.value = [3, 4, S, S]
        dp.op_ld(core, "a")
        dp.op_ldp(core, "a")      # window not empty: must not refill
        assert dp.word_a.value == [3, 4, S, S]
        dp.word_a.value = [S, S, S, S]
        dp.op_ldp(core, "a")      # drained: refills all four
        assert dp.word_a.value == [5, 6, 7, 8]


class TestStorePath:
    def test_st_delayed_below_four_elements(self, core):
        dp = primed(core, [], [])
        dp.result.value = [7, 8, S, S]
        dp.result_cnt.value = 2
        dp.op_st_s(core)
        dp.op_st(core)  # only 2 buffered: "store is delayed"
        assert dp.count.value == 0
        assert core.read_words(0x2000, 1) == [0]

    def test_st_fires_at_four(self, core):
        dp = primed(core, [], [])
        for batch in ([1, 2, S, S], [3, 4, S, S]):
            dp.result.value = list(batch)
            dp.result_cnt.value = 2
            dp.op_st_s(core)
        dp.op_st(core)
        assert core.read_words(0x2000, 4) == [1, 2, 3, 4]
        assert dp.count.value == 4
        assert dp.ptr_c.value == 0x2010

    def test_flush_drains_tail(self, core):
        dp = primed(core, [], [])
        dp.result.value = [9, 10, 11, S]
        dp.result_cnt.value = 3
        dp.op_st_s(core)
        dp.op_st_flush(core)
        assert core.read_words(0x2000, 3) == [9, 10, 11]
        assert dp.count.value == 3

    def test_sop_backpressure_when_fifo_full(self, core):
        dp = primed(core, [], [])
        dp.word_a.value = [1, 2, 3, 4]
        dp.word_b.value = [1, 2, 3, 4]
        dp.fifo_cnt.value = 13  # fewer than 4 lanes free
        dp.op_sop(core, "intersection")
        assert dp.result_cnt.value == 0
        assert dp.word_a.value == [1, 2, 3, 4]  # nothing consumed


class TestSopStalls:
    def test_stalls_when_window_empty_but_stream_pending(self, core):
        dp = primed(core, [1, 2, 3, 4], [5, 6, 7, 8])
        dp.word_b.value = [5, 6, 7, 8]
        # word_a empty but ptr_a < end_a: SOP must wait for LD/LD_P
        dp.op_sop(core, "intersection")
        assert dp.word_b.value == [5, 6, 7, 8]

    def test_proceeds_when_side_truly_exhausted(self, core):
        dp = primed(core, [], [5, 6, 7, 8])
        dp.word_b.value = [5, 6, 7, 8]
        dp.op_sop(core, "union")
        assert dp.result_cnt.value == 4

    def test_more_work_flag(self, core):
        dp = primed(core, [], [])
        assert dp.more_work() == 0
        dp.word_a.value = [1, S, S, S]
        assert dp.more_work() == 1
        dp.word_a.value = [S, S, S, S]
        dp.fifo_cnt.value = 4
        assert dp.more_work() == 1
        dp.fifo_cnt.value = 3  # tail: handled by st_flush, loop exits
        assert dp.more_work() == 0


class TestMergeDatapath:
    def prime_merge(self, core, run_a, run_b):
        dp = MergeDatapath()
        core.write_words(0x0, run_a)
        core.write_words(0x1000, run_b)
        dp.ptr_a.value = 0x0
        dp.end_a.value = 4 * len(run_a)
        dp.ptr_b.value = 0x1000
        dp.end_b.value = 0x1000 + 4 * len(run_b)
        dp.ptr_c.value = 0x2000
        dp.op_minit(core)
        return dp

    def test_minit_latches_target_in_blocks(self, core):
        dp = self.prime_merge(core, [1, 2, 3, 4], [5, 6, 7, 8])
        assert dp.target.value == 2

    def test_mld_skips_exhausted_stream(self, core):
        dp = self.prime_merge(core, [], [1, 2, 3, 4])
        dp.op_mld(core)
        assert dp.stage_b_full.value == 1  # refilled B, not dead A

    def test_msel_takes_smaller_head(self, core):
        dp = self.prime_merge(core, [10, 11, 12, 13], [1, 2, 3, 4])
        dp.op_mld(core)
        dp.op_mld(core)
        dp.op_msel(core)
        assert dp.keep.value == [1, 2, 3, 4]

    def test_msel_stalls_on_pending_empty_stage(self, core):
        dp = self.prime_merge(core, [10, 11, 12, 13], [1, 2, 3, 4])
        dp.op_mld(core)  # stage A only
        dp.op_msel(core)  # B pending but not staged: must stall
        assert dp.keep_full.value == 0

    def test_full_pair_merge_via_ops(self, core):
        dp = self.prime_merge(core, [1, 3, 5, 7], [2, 4, 6, 8])
        dp.op_mld(core)
        dp.op_mld(core)
        dp.op_msel(core)
        dp.op_mld(core)
        dp.op_msel(core)
        for _ in range(8):
            dp.op_mst(core)
            dp.op_mst_s(core)
            dp.op_merge(core)
            dp.op_msel(core)
            dp.op_mld(core)
        while dp.more_work():
            dp.op_mst(core)
            dp.op_mst_s(core)
            dp.op_merge(core)
            dp.op_msel(core)
        assert core.read_words(0x2000, 8) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_presort_ops(self, core):
        dp = self.prime_merge(core, [4, 1, 3, 2], [])
        dp.op_ldsort(core)
        assert dp.result.value == [1, 2, 3, 4]
        dp.op_stsort(core)
        assert core.read_words(0x2000, 4) == [1, 2, 3, 4]
        assert dp.presort_more() == 0

    def test_presort_flag_while_data_remains(self, core):
        dp = self.prime_merge(core, [4, 1, 3, 2, 8, 5, 7, 6], [])
        dp.op_ldsort(core)
        assert dp.presort_more() == 1
