"""Integration tests for the scalar baseline kernels."""

import pytest

from repro.core.scalar_kernels import (run_scalar_merge_sort,
                                       run_scalar_set_operation)
from repro.workloads.sets import generate_set_pair
from repro.workloads.sorting import random_values

OPS = ("intersection", "union", "difference")


def truth(which, set_a, set_b):
    if which == "intersection":
        return sorted(set(set_a) & set(set_b))
    if which == "union":
        return sorted(set(set_a) | set(set_b))
    return sorted(set(set_a) - set(set_b))


@pytest.mark.parametrize("which", OPS)
class TestScalarSetOps:
    def check(self, processor, which, set_a, set_b):
        result, _stats = run_scalar_set_operation(processor, which,
                                                  set_a, set_b)
        assert result == truth(which, set_a, set_b)

    def test_random(self, mini_108, which):
        set_a, set_b = generate_set_pair(200, selectivity=0.5, seed=1)
        self.check(mini_108, which, set_a, set_b)

    def test_on_dba_core(self, dba_1lsu, which):
        set_a, set_b = generate_set_pair(200, selectivity=0.3, seed=2)
        self.check(dba_1lsu, which, set_a, set_b)

    def test_identical(self, mini_108, which):
        set_a, _ = generate_set_pair(64, selectivity=1.0, seed=3)
        self.check(mini_108, which, set_a, list(set_a))

    def test_disjoint(self, mini_108, which):
        self.check(mini_108, which, list(range(0, 40, 2)),
                   list(range(1, 41, 2)))

    def test_a_exhausts_first(self, mini_108, which):
        self.check(mini_108, which, [1, 2, 3], [2, 3, 50, 60, 70])

    def test_b_exhausts_first(self, mini_108, which):
        self.check(mini_108, which, [2, 3, 50, 60, 70], [1, 2, 3])

    def test_empty_inputs(self, mini_108, which):
        self.check(mini_108, which, [], [1, 2, 3])
        self.check(mini_108, which, [1, 2, 3], [])
        self.check(mini_108, which, [], [])

    def test_single_elements(self, mini_108, which):
        self.check(mini_108, which, [7], [7])
        self.check(mini_108, which, [7], [8])


class TestScalarSort:
    @pytest.mark.parametrize("size", [0, 1, 2, 3, 5, 17, 100, 255])
    def test_sizes(self, dba_1lsu, size):
        values = random_values(size, seed=size)
        output, _stats = run_scalar_merge_sort(dba_1lsu, values)
        assert output == sorted(values)

    def test_duplicates(self, dba_1lsu):
        values = [3, 1, 3, 1, 2] * 20
        output, _stats = run_scalar_merge_sort(dba_1lsu, values)
        assert output == sorted(values)

    def test_on_108mini(self, mini_108):
        values = random_values(120, seed=9)
        output, _stats = run_scalar_merge_sort(mini_108, values)
        assert output == sorted(values)


class TestScalarBaselineShape:
    def test_local_store_beats_system_memory(self, mini_108, dba_1lsu):
        """DBA_1LSU's local store roughly doubles scalar throughput
        over the 108Mini (paper Section 5.2)."""
        set_a, set_b = generate_set_pair(500, selectivity=0.5, seed=4)
        _r, mini = run_scalar_set_operation(mini_108, "intersection",
                                            set_a, set_b)
        _r, dba = run_scalar_set_operation(dba_1lsu, "intersection",
                                           set_a, set_b)
        assert dba.cycles < mini.cycles
        ratio = mini.cycles / dba.cycles
        assert 1.3 < ratio < 3.0

    def test_union_writes_more_than_intersection(self, dba_1lsu):
        set_a, set_b = generate_set_pair(500, selectivity=0.5, seed=5)
        _r, union = run_scalar_set_operation(dba_1lsu, "union", set_a,
                                             set_b)
        _r, intersect = run_scalar_set_operation(dba_1lsu,
                                                 "intersection",
                                                 set_a, set_b)
        assert union.stats["lsu_stores"][0] \
            > intersect.stats["lsu_stores"][0]
