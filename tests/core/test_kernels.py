"""Integration tests: EIS kernels against Python ground truth.

Covers all four extension variants (1/2 LSUs x partial loading on/off)
across edge-case set shapes — sizes around the 4-lane granularity,
empty sets, disjoint and identical sets, and asymmetric lengths.
"""

import pytest

from repro.core.kernels import run_merge_sort, run_set_operation
from repro.workloads.sets import generate_set_pair
from repro.workloads.sorting import random_values

VARIANTS = [("DBA_2LSU_EIS", True), ("DBA_2LSU_EIS", False),
            ("DBA_1LSU_EIS", True), ("DBA_1LSU_EIS", False)]

OPS = ("intersection", "union", "difference")


def truth(which, set_a, set_b):
    if which == "intersection":
        return sorted(set(set_a) & set(set_b))
    if which == "union":
        return sorted(set(set_a) | set(set_b))
    return sorted(set(set_a) - set(set_b))


@pytest.mark.parametrize("variant", VARIANTS,
                         ids=["2lsu-pl", "2lsu-nopl", "1lsu-pl",
                              "1lsu-nopl"])
@pytest.mark.parametrize("which", OPS)
class TestSetOperationsAllVariants:
    def run(self, all_eis_processors, variant, which, set_a, set_b):
        processor = all_eis_processors[variant]
        result, _stats = run_set_operation(processor, which, set_a,
                                           set_b)
        assert result == truth(which, set_a, set_b)

    def test_random_midsize(self, all_eis_processors, variant, which):
        set_a, set_b = generate_set_pair(300, selectivity=0.5, seed=1)
        self.run(all_eis_processors, variant, which, set_a, set_b)

    def test_disjoint(self, all_eis_processors, variant, which):
        set_a, set_b = generate_set_pair(100, selectivity=0.0, seed=2)
        self.run(all_eis_processors, variant, which, set_a, set_b)

    def test_identical(self, all_eis_processors, variant, which):
        set_a, _ = generate_set_pair(100, selectivity=1.0, seed=3)
        self.run(all_eis_processors, variant, which, set_a, list(set_a))

    def test_non_multiple_of_four_lengths(self, all_eis_processors,
                                          variant, which):
        set_a, set_b = generate_set_pair(101, 99, selectivity=0.4,
                                         seed=4)
        self.run(all_eis_processors, variant, which, set_a, set_b)

    def test_very_asymmetric(self, all_eis_processors, variant, which):
        set_a, set_b = generate_set_pair(400, 7, selectivity=0.9, seed=5)
        self.run(all_eis_processors, variant, which, set_a, set_b)

    def test_tiny_sets(self, all_eis_processors, variant, which):
        self.run(all_eis_processors, variant, which, [5], [5])
        self.run(all_eis_processors, variant, which, [5], [6])
        self.run(all_eis_processors, variant, which, [1, 2, 3],
                 [2, 3, 4])

    def test_empty_b(self, all_eis_processors, variant, which):
        self.run(all_eis_processors, variant, which, [1, 2, 3, 4, 5],
                 [])

    def test_empty_a(self, all_eis_processors, variant, which):
        self.run(all_eis_processors, variant, which, [],
                 [1, 2, 3, 4, 5])

    def test_both_empty(self, all_eis_processors, variant, which):
        self.run(all_eis_processors, variant, which, [], [])

    def test_value_ranges_disjoint(self, all_eis_processors, variant,
                                   which):
        self.run(all_eis_processors, variant, which,
                 list(range(1, 50)), list(range(1000, 1050)))

    def test_interleaved_runs(self, all_eis_processors, variant, which):
        set_a = [i * 10 for i in range(1, 60)]
        set_b = [i * 10 + 5 for i in range(1, 60)] + [300, 400]
        self.run(all_eis_processors, variant, which, set_a,
                 sorted(set(set_b)))


class TestInputValidation:
    def test_unsorted_input_rejected(self, eis_2lsu_partial):
        with pytest.raises(ValueError, match="sorted"):
            run_set_operation(eis_2lsu_partial, "intersection",
                              [3, 1, 2], [1, 2, 3])

    def test_duplicate_input_rejected(self, eis_2lsu_partial):
        with pytest.raises(ValueError, match="sorted"):
            run_set_operation(eis_2lsu_partial, "intersection",
                              [1, 1, 2], [1, 2, 3])

    def test_sentinel_value_rejected(self, eis_2lsu_partial):
        with pytest.raises(ValueError, match="sentinel"):
            run_set_operation(eis_2lsu_partial, "intersection",
                              [1, 0xFFFFFFFF], [1])

    def test_unknown_operation_rejected(self, eis_2lsu_partial):
        with pytest.raises(ValueError, match="unknown"):
            run_set_operation(eis_2lsu_partial, "symmetric_difference",
                              [1], [1])


@pytest.mark.parametrize("config", ["DBA_1LSU_EIS", "DBA_2LSU_EIS"])
class TestMergeSort:
    @pytest.mark.parametrize("size", [0, 1, 2, 4, 5, 8, 13, 64, 100,
                                      257])
    def test_sizes(self, all_eis_processors, config, size):
        processor = all_eis_processors[(config, True)]
        values = random_values(size, seed=size)
        output, _stats = run_merge_sort(processor, values)
        assert output == sorted(values)

    def test_duplicates_preserved(self, all_eis_processors, config):
        processor = all_eis_processors[(config, True)]
        values = [5, 3, 5, 1, 3, 5, 1, 1, 2, 2] * 10
        output, _stats = run_merge_sort(processor, values)
        assert output == sorted(values)

    def test_already_sorted(self, all_eis_processors, config):
        processor = all_eis_processors[(config, True)]
        values = list(range(100))
        output, _stats = run_merge_sort(processor, values)
        assert output == values

    def test_reverse_sorted(self, all_eis_processors, config):
        processor = all_eis_processors[(config, True)]
        values = list(range(100, 0, -1))
        output, _stats = run_merge_sort(processor, values)
        assert output == sorted(values)

    def test_sentinel_rejected(self, all_eis_processors, config):
        processor = all_eis_processors[(config, True)]
        with pytest.raises(ValueError, match="sentinel|0xFFFFFFFF"):
            run_merge_sort(processor, [1, 0xFFFFFFFF])


class TestThroughputShape:
    """Relative-performance invariants from the paper's Table 2."""

    def test_partial_loading_never_slower_at_midselectivity(
            self, all_eis_processors):
        set_a, set_b = generate_set_pair(1000, selectivity=0.5, seed=7)
        _r, with_pl = run_set_operation(
            all_eis_processors[("DBA_2LSU_EIS", True)], "intersection",
            set_a, set_b)
        _r, without_pl = run_set_operation(
            all_eis_processors[("DBA_2LSU_EIS", False)], "intersection",
            set_a, set_b)
        assert with_pl.cycles < without_pl.cycles

    def test_second_lsu_speeds_up_intersection(self,
                                               all_eis_processors):
        set_a, set_b = generate_set_pair(1000, selectivity=0.5, seed=8)
        _r, two_lsu = run_set_operation(
            all_eis_processors[("DBA_2LSU_EIS", True)], "intersection",
            set_a, set_b)
        _r, one_lsu = run_set_operation(
            all_eis_processors[("DBA_1LSU_EIS", True)], "intersection",
            set_a, set_b)
        assert two_lsu.cycles < one_lsu.cycles

    def test_union_is_the_slowest_eis_op(self, all_eis_processors):
        processor = all_eis_processors[("DBA_2LSU_EIS", True)]
        set_a, set_b = generate_set_pair(1000, selectivity=0.5, seed=9)
        cycles = {}
        for which in OPS:
            _r, stats = run_set_operation(processor, which, set_a,
                                          set_b)
            cycles[which] = stats.cycles
        assert cycles["union"] >= cycles["intersection"]
        assert cycles["union"] >= cycles["difference"]

    def test_sort_throughput_is_input_invariant(self,
                                                all_eis_processors):
        processor = all_eis_processors[("DBA_1LSU_EIS", True)]
        cycles = set()
        for seed in range(3):
            values = random_values(512, seed=seed)
            _out, stats = run_merge_sort(processor, values)
            cycles.add(stats.cycles)
        sorted_vals = sorted(random_values(512, seed=0))
        _out, stats = run_merge_sort(processor, sorted_vals)
        cycles.add(stats.cycles)
        assert len(cycles) == 1  # no data-dependent shortcuts
