"""Tests for the prefetcher-streamed set operations (E7 substrate)."""

import pytest

from repro.configs.catalog import build_processor
from repro.core.streaming import (run_streaming_set_operation,
                                  split_at_thresholds)
from repro.workloads.sets import generate_set_pair


@pytest.fixture(scope="module")
def streaming_processor():
    return build_processor("DBA_2LSU_EIS", partial_load=True,
                           prefetcher=True, sim_headroom_kb=512)


class TestThresholdSplit:
    def test_chunks_cover_both_sets(self):
        set_a, set_b = generate_set_pair(5000, selectivity=0.5, seed=1)
        chunks = split_at_thresholds(set_a, set_b, 512)
        assert chunks[0][0][0] == 0 and chunks[0][1][0] == 0
        assert chunks[-1][0][1] == len(set_a)
        assert chunks[-1][1][1] == len(set_b)
        for first, second in zip(chunks, chunks[1:]):
            assert first[0][1] == second[0][0]
            assert first[1][1] == second[1][0]

    def test_no_cross_chunk_matches_possible(self):
        set_a, set_b = generate_set_pair(2000, selectivity=0.5, seed=2)
        chunks = split_at_thresholds(set_a, set_b, 256)
        for (a_lo, a_hi), (b_lo, b_hi) in chunks:
            a_vals = set_a[a_lo:a_hi]
            b_rest = set(set_b) - set(set_b[b_lo:b_hi])
            assert not (set(a_vals) & b_rest)

    def test_empty_sets(self):
        assert split_at_thresholds([], [], 64) == []

    def test_one_empty_side(self):
        chunks = split_at_thresholds(list(range(10)), [], 4)
        assert chunks[-1][0][1] == 10
        assert all(b0 == b1 == 0 for (_a, (b0, b1)) in chunks)


class TestStreamingCorrectness:
    @pytest.mark.parametrize("which", ["intersection", "union",
                                       "difference"])
    def test_matches_ground_truth(self, streaming_processor, which):
        set_a, set_b = generate_set_pair(9000, selectivity=0.5, seed=3)
        expected = {
            "intersection": sorted(set(set_a) & set(set_b)),
            "union": sorted(set(set_a) | set(set_b)),
            "difference": sorted(set(set_a) - set(set_b)),
        }[which]
        result, _stats = run_streaming_set_operation(
            streaming_processor, which, set_a, set_b)
        assert result == expected

    def test_blocking_variant_also_correct(self, streaming_processor):
        set_a, set_b = generate_set_pair(6000, selectivity=0.3, seed=4)
        result, _stats = run_streaming_set_operation(
            streaming_processor, "intersection", set_a, set_b,
            overlap=False)
        assert result == sorted(set(set_a) & set(set_b))

    def test_requires_prefetcher(self, eis_2lsu_partial):
        with pytest.raises(ValueError, match="prefetcher"):
            run_streaming_set_operation(eis_2lsu_partial,
                                        "intersection", [1], [1])

    def test_oversized_chunk_rejected(self, streaming_processor):
        with pytest.raises(ValueError, match="half buffer"):
            run_streaming_set_operation(streaming_processor,
                                        "intersection", [1], [1],
                                        chunk_elements=10_000)


class TestStreamingThroughputShape:
    def test_overlap_beats_blocking(self, streaming_processor):
        set_a, set_b = generate_set_pair(12_000, selectivity=0.5,
                                         seed=5)
        _r, overlapped = run_streaming_set_operation(
            streaming_processor, "intersection", set_a, set_b,
            overlap=True)
        _r, blocking = run_streaming_set_operation(
            streaming_processor, "intersection", set_a, set_b,
            overlap=False)
        assert overlapped.cycles < blocking.cycles

    def test_throughput_roughly_constant_with_size(
            self, streaming_processor):
        """The paper's system-level claim: throughput does not degrade
        as data grows beyond the local store."""
        per_element = []
        for size in (8_000, 32_000):
            set_a, set_b = generate_set_pair(size, selectivity=0.5,
                                             seed=6)
            _r, stats = run_streaming_set_operation(
                streaming_processor, "intersection", set_a, set_b)
            per_element.append(stats.cycles / (2 * size))
        small, large = per_element
        assert large <= small * 1.10  # no degradation at 4x the data
