"""Tests for the Section 2.2 instruction-merging demo extension."""

import random
import zlib

import pytest

from repro.core.bitops import (bitrev_reference, bitrev_software_kernel,
                               build_bitops_extension, crc32_reference,
                               run_crc32)
from repro.cpu import CoreConfig, Processor
from repro.tie import Intrinsics


@pytest.fixture()
def processor():
    return Processor(CoreConfig("bitops", dmem0_kb=16,
                                sim_headroom_kb=0),
                     extensions=[build_bitops_extension()])


class TestReferences:
    def test_crc32_matches_zlib(self):
        rng = random.Random(1)
        words = [rng.randrange(1 << 32) for _ in range(16)]
        data = b"".join(word.to_bytes(4, "little") for word in words)
        assert crc32_reference(words) == zlib.crc32(data)

    def test_bitrev_reference(self):
        assert bitrev_reference(0x80000000) == 1
        assert bitrev_reference(1) == 0x80000000
        assert bitrev_reference(0xF0F0F0F0) == 0x0F0F0F0F


class TestInstructions:
    def test_crc_word_instruction(self, processor):
        words = [0xDEADBEEF, 0x12345678, 0]
        crc, _stats = run_crc32(processor, words, hardware=True)
        assert crc == crc32_reference(words)

    def test_crc_software_kernel_agrees(self, processor):
        words = [3, 1, 4, 1, 5, 9, 2, 6]
        hw_crc, _ = run_crc32(processor, words, hardware=True)
        sw_crc, _ = run_crc32(processor, words, hardware=False)
        assert hw_crc == sw_crc == crc32_reference(words)

    def test_bitrev_intrinsic(self, processor):
        intrinsics = Intrinsics(processor)
        rng = random.Random(2)
        for _ in range(50):
            word = rng.randrange(1 << 32)
            assert intrinsics.bitrev(word) == bitrev_reference(word)

    def test_bitrev_software_kernel_agrees(self, processor):
        processor.load_program(bitrev_software_kernel())
        rng = random.Random(3)
        intrinsics = Intrinsics(processor)
        for _ in range(10):
            word = rng.randrange(1 << 32)
            result = processor.run(entry="main", regs={"a2": word})
            assert result.reg("a2") == intrinsics.bitrev(word)

    def test_popcnt(self, processor):
        intrinsics = Intrinsics(processor)
        assert intrinsics.popcnt(0) == 0
        assert intrinsics.popcnt(0xFFFFFFFF) == 32
        assert intrinsics.popcnt(0x80000001) == 2


class TestMergingPayoff:
    def test_crc_speedup_order_of_magnitude(self, processor):
        """The merged instruction replaces a 32-iteration bit loop."""
        words = list(range(1, 65))
        _crc, hw = run_crc32(processor, words, hardware=True)
        _crc, sw = run_crc32(processor, words, hardware=False)
        speedup = sw.cycles / hw.cycles
        assert speedup > 20  # ~200 cycles/word in software vs ~5

    def test_bitrev_hardware_single_cycle(self, processor):
        processor.load_program("main:\n  bitrev a3, a2\n  halt")
        hw = processor.run(entry="main", regs={"a2": 0x1234})
        processor.load_program(bitrev_software_kernel())
        sw = processor.run(entry="main", regs={"a2": 0x1234})
        assert hw.instructions == 2  # bitrev + halt
        assert sw.instructions > 25  # "dozens of instructions"

    def test_area_cost_is_modest(self):
        """Merged instructions must not waste chip space (the paper's
        selection criterion); the whole demo extension is far below
        one percent of the base core."""
        from repro.synth.area import BASE_CORE_GE
        extension = build_bitops_extension()
        netlist = extension.netlist()
        assert netlist.total_ge() < 0.1 * BASE_CORE_GE

    def test_bitrev_adds_no_critical_path(self):
        extension = build_bitops_extension()
        operation = extension.operation("bitrev")
        assert operation.path == ()  # pure wiring
