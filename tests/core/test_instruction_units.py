"""A dedicated unit test for each newly introduced instruction.

Paper Section 3.1: "In our work, we use a dedicated unit test for each
newly introduced instruction.  The unit tests compare output results
with pre-specified values — especially considering corner cases."

These tests drive the EIS operations through the intrinsics layer
(:mod:`repro.tie.intrinsics`) on a live DBA_2LSU_EIS processor, with
datapath state staged directly — the Python rendition of the paper's
instruction-level testbench.
"""

import pytest

from repro.configs.catalog import build_processor
from repro.core.common import SENTINEL
from repro.tie import Intrinsics

S = SENTINEL


@pytest.fixture()
def setup():
    processor = build_processor("DBA_2LSU_EIS", partial_load=True)
    extension = processor.extension_states["db_eis"]
    return processor, Intrinsics(processor), extension.setdp, \
        extension.mergedp


class TestSopInit:
    def test_clears_datapath(self, setup):
        processor, intr, dp, _mdp = setup
        dp.word_a.value = [1, 2, 3, 4]
        dp.fifo_cnt.value = 7
        dp.count.value = 99
        intr.sop_init()
        assert dp.word_a.value == [S, S, S, S]
        assert dp.fifo_cnt.value == 0
        assert dp.count.value == 0


class TestLdInstructions:
    def test_ld_a_masks_past_end(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        processor.write_words(0x0, [10, 20, 30])
        dp.ptr_a.value = 0x0
        dp.end_a.value = 12
        intr.ld_a()
        assert dp.load_a.value == [10, 20, 30, S]

    def test_ld_b_uses_second_lsu(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        base = processor.dmem1.base
        processor.write_words(base, [1, 2, 3, 4])
        dp.ptr_b.value = base
        dp.end_b.value = base + 16
        before = processor.lsus[1].loads
        intr.ld_b()
        assert processor.lsus[1].loads == before + 1
        assert dp.load_b.value == [1, 2, 3, 4]


class TestLdpInstructions:
    def test_ldp_a_corner_case_partial_stage(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        dp.load_a.value = [5, S, S, S]
        dp.load_cnt_a.value = 1
        dp.word_a.value = [1, 2, S, S]
        intr.ldp_a()
        assert dp.word_a.value == [1, 2, 5, S]
        assert dp.load_cnt_a.value == 0

    def test_ldp_b_full_refill(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        dp.load_b.value = [1, 2, 3, 4]
        dp.load_cnt_b.value = 4
        intr.ldp_b()
        assert dp.word_b.value == [1, 2, 3, 4]


class TestSopInstructions:
    def stage(self, dp, wa, wb):
        dp.word_a.value = list(wa)
        dp.word_b.value = list(wb)

    def test_sop_int(self, setup):
        _p, intr, dp, _mdp = setup
        intr.sop_init()
        self.stage(dp, [1, 2, 3, 4], [2, 4, 6, 8])
        intr.sop_int()
        assert dp.result.value[:dp.result_cnt.value] == [2, 4]

    def test_sop_uni(self, setup):
        _p, intr, dp, _mdp = setup
        intr.sop_init()
        self.stage(dp, [1, 2, S, S], [2, 3, S, S])
        intr.sop_uni()
        # t = min(2, 3) = 2: the 3 stays in B's window for later
        assert dp.result.value[:dp.result_cnt.value] == [1, 2]
        assert dp.word_b.value == [3, S, S, S]

    def test_sop_dif(self, setup):
        _p, intr, dp, _mdp = setup
        intr.sop_init()
        self.stage(dp, [1, 2, 3, 4], [2, 4, 6, 8])
        intr.sop_dif()
        assert dp.result.value[:dp.result_cnt.value] == [1, 3]


class TestStoreInstructions:
    def test_st_s_then_st_res(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        dp.ptr_c.value = 0x400
        dp.result.value = [1, 2, 3, 4]
        dp.result_cnt.value = 4
        intr.st_s()
        intr.st_res()
        assert processor.read_words(0x400, 4) == [1, 2, 3, 4]
        assert dp.count.value == 4

    def test_st_flush_corner_case_three_elements(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        dp.ptr_c.value = 0x400
        dp.result.value = [7, 8, 9, S]
        dp.result_cnt.value = 3
        intr.st_s()
        intr.st_res()   # delayed: fewer than four elements
        assert dp.count.value == 0
        intr.st_flush()
        assert processor.read_words(0x400, 3) == [7, 8, 9]
        assert dp.count.value == 3


class TestFusedInstructions:
    def test_store_sop_int_returns_continue_flag(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        dp.word_a.value = [1, 2, 3, 4]
        dp.word_b.value = [1, 2, 3, 4]
        flag = intr.store_sop_int()
        assert flag == 1  # results still in flight
        # drain: shuffle + store, then the flag drops
        intr.st_s()
        flag = intr.store_sop_int()
        assert dp.count.value == 4
        assert flag == 0

    def test_ld_ldp_shuffle_moves_all_three_stages(self, setup):
        processor, intr, dp, _mdp = setup
        intr.sop_init()
        processor.write_words(0x0, [1, 2, 3, 4])
        base_b = processor.dmem1.base
        processor.write_words(base_b, [5, 6, 7, 8])
        dp.ptr_a.value = 0x0
        dp.end_a.value = 16
        dp.ptr_b.value = base_b
        dp.end_b.value = base_b + 16
        dp.result.value = [9, S, S, S]
        dp.result_cnt.value = 1
        intr.ld_ldp_shuffle()
        assert dp.fifo_cnt.value == 1          # ST_S ran
        assert dp.load_a.value == [1, 2, 3, 4]  # LD ran
        assert dp.load_cnt_a.value == 4
        # windows refill on the *next* shuffle (stage -> window)
        intr.ld_ldp_shuffle()
        assert dp.word_a.value == [1, 2, 3, 4]


class TestMergeInstructions:
    def test_minit_mld_msel_merge_chain(self, setup):
        processor, intr, _dp, mdp = setup
        processor.write_words(0x0, [1, 3, 5, 7])
        processor.write_words(0x100, [2, 4, 6, 8])
        mdp.ptr_a.value = 0x0
        mdp.end_a.value = 16
        mdp.ptr_b.value = 0x100
        mdp.end_b.value = 0x100 + 16
        mdp.ptr_c.value = 0x400
        intr.minit()
        assert mdp.target.value == 2
        intr.mld()
        intr.mld()
        intr.mldsel()
        intr.mldsel()
        flag = intr.merge_st()
        assert flag == 1
        assert mdp.result.value == [1, 2, 3, 4]

    def test_ldsort_sorts_through_network(self, setup):
        processor, intr, _dp, mdp = setup
        processor.write_words(0x0, [9, 1, 7, 3])
        mdp.ptr_a.value = 0x0
        mdp.end_a.value = 16
        mdp.ptr_c.value = 0x400
        mdp.result_full.value = 0
        intr.ldsort()
        assert mdp.result.value == [1, 3, 7, 9]

    def test_stsort_stores_and_flags(self, setup):
        processor, intr, _dp, mdp = setup
        processor.write_words(0x0, [4, 3, 2, 1])
        mdp.ptr_a.value = 0x0
        mdp.end_a.value = 16
        mdp.ptr_c.value = 0x400
        mdp.result_full.value = 0
        intr.ldsort()
        flag = intr.stsort()
        assert processor.read_words(0x400, 4) == [1, 2, 3, 4]
        assert flag == 0  # run exhausted and result stored
