"""Property-based tests of the SOP comparison semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import LANES, SENTINEL
from repro.core.sop import (SOP_FUNCTIONS, sop_difference, sop_intersect,
                            sop_union, valid_count)


def window_strategy():
    """A valid window: sorted distinct values, sentinel-padded."""
    return st.lists(st.integers(min_value=0, max_value=200),
                    unique=True, min_size=0, max_size=LANES).map(
        lambda values: sorted(values)
        + [SENTINEL] * (LANES - len(values)))


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_consumption_bounds(window_a, window_b):
    for step_fn in SOP_FUNCTIONS.values():
        step = step_fn(window_a, window_b)
        assert 0 <= step.consumed_a <= valid_count(window_a)
        assert 0 <= step.consumed_b <= valid_count(window_b)


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_at_least_one_side_drains_when_both_have_data(window_a,
                                                      window_b):
    va, vb = valid_count(window_a), valid_count(window_b)
    step = sop_intersect(window_a, window_b)
    if va and vb:
        assert step.consumed_a == va or step.consumed_b == vb


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_outputs_sorted_and_sentinel_free(window_a, window_b):
    for step_fn in SOP_FUNCTIONS.values():
        output = step_fn(window_a, window_b).output
        assert output == sorted(output)
        assert SENTINEL not in output


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_intersect_output_is_exact_on_consumed_prefixes(window_a,
                                                        window_b):
    step = sop_intersect(window_a, window_b)
    consumed_a = set(window_a[:step.consumed_a])
    consumed_b = set(window_b[:step.consumed_b])
    assert set(step.output) == consumed_a & consumed_b


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_union_never_exceeds_result_width(window_a, window_b):
    step = sop_union(window_a, window_b)
    assert len(step.output) <= LANES
    consumed = set(window_a[:step.consumed_a]) \
        | set(window_b[:step.consumed_b])
    assert set(step.output) == consumed


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_both_copies_consumed_together(window_a, window_b):
    """The invariant that makes the operations exact: a value present
    in both windows is either consumed on both sides or on neither."""
    for step_fn in SOP_FUNCTIONS.values():
        step = step_fn(window_a, window_b)
        consumed_a = set(window_a[:step.consumed_a]) - {SENTINEL}
        left_a = set(window_a[step.consumed_a:]) - {SENTINEL}
        consumed_b = set(window_b[:step.consumed_b]) - {SENTINEL}
        left_b = set(window_b[step.consumed_b:]) - {SENTINEL}
        assert not (consumed_a & left_b)
        assert not (consumed_b & left_a)


@given(window_strategy(), window_strategy())
@settings(max_examples=300)
def test_difference_output_subset_of_a(window_a, window_b):
    step = sop_difference(window_a, window_b)
    assert set(step.output) <= set(window_a) - {SENTINEL}
    assert not (set(step.output) & set(window_b))
