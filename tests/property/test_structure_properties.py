"""Property-based tests of the structural layers.

Sorting networks, encodings, the baseline SIMD algorithms and the
workload generators.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sse import SimdMachine, bitonic_merge4
from repro.baselines.swset import swset_intersect
from repro.baselines.swsort import swsort
from repro.core.sortnet import merge8, sort4
from repro.core.streaming import split_at_thresholds
from repro.isa.encoding import FORMATS
from repro.workloads.sets import generate_set_pair

u32 = st.integers(min_value=0, max_value=2**32 - 1)
lane4 = st.lists(u32, min_size=4, max_size=4)
sorted4 = lane4.map(sorted)


@given(lane4)
@settings(max_examples=300)
def test_sort4_equals_sorted(values):
    assert sort4(values) == sorted(values)


@given(sorted4, sorted4)
@settings(max_examples=300)
def test_merge8_equals_sorted(a, b):
    low, high = merge8(a, b)
    assert list(low) + list(high) == sorted(a + b)


@given(sorted4, sorted4)
@settings(max_examples=300)
def test_sse_bitonic_merge_equals_sorted(a, b):
    machine = SimdMachine()
    low, high = bitonic_merge4(machine, tuple(a), tuple(b))
    assert list(low) + list(high) == sorted(a + b)


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 2),
                max_size=120))
@settings(max_examples=60, deadline=None)
def test_swsort_equals_sorted(values):
    result, _machine = swsort(values)
    assert result == sorted(values)


@given(st.lists(st.integers(min_value=0, max_value=300), unique=True,
                max_size=50).map(sorted),
       st.lists(st.integers(min_value=0, max_value=300), unique=True,
                max_size=50).map(sorted))
@settings(max_examples=100)
def test_swset_equals_python_intersection(set_a, set_b):
    result, _machine = swset_intersect(set_a, set_b)
    assert result == sorted(set(set_a) & set(set_b))


@given(st.sampled_from(["R", "R4", "I", "B", "BZ", "J", "U", "N"]),
       st.data())
@settings(max_examples=200)
def test_encoding_round_trip(fmt_key, data):
    fmt = FORMATS[fmt_key]
    operands = []
    for kind in fmt.operand_kinds:
        if kind == "reg":
            operands.append(data.draw(st.integers(0, 15)))
        elif fmt_key == "U":
            operands.append(data.draw(st.integers(0, (1 << 12) - 1)))
        elif fmt_key == "IU":
            operands.append(data.draw(st.integers(0, 0xFFFF)))
        elif fmt_key == "J":
            operands.append(data.draw(
                st.integers(-(1 << 23), (1 << 23) - 1)))
        else:
            operands.append(data.draw(st.integers(-(1 << 15),
                                                  (1 << 15) - 1)))
    word = fmt.pack(0x5A, tuple(operands))
    assert fmt.unpack(word) == tuple(operands)


@given(st.integers(min_value=1, max_value=300),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=100)
def test_generator_selectivity_exact(size, selectivity, seed):
    set_a, set_b = generate_set_pair(size, selectivity=selectivity,
                                     seed=seed)
    assert len(set(set_a) & set(set_b)) == round(selectivity * size)
    assert set_a == sorted(set(set_a))
    assert set_b == sorted(set(set_b))


@given(st.lists(st.integers(min_value=0, max_value=5000), unique=True,
                max_size=200).map(sorted),
       st.lists(st.integers(min_value=0, max_value=5000), unique=True,
                max_size=200).map(sorted),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100)
def test_threshold_split_partitions_cleanly(set_a, set_b, chunk):
    chunks = split_at_thresholds(set_a, set_b, chunk)
    covered_a = [index for (a_lo, a_hi), _b in chunks
                 for index in range(a_lo, a_hi)]
    covered_b = [index for _a, (b_lo, b_hi) in chunks
                 for index in range(b_lo, b_hi)]
    assert covered_a == list(range(len(set_a)))
    assert covered_b == list(range(len(set_b)))
    # chunk-local intersections concatenate to the full intersection
    pieces = []
    for (a_lo, a_hi), (b_lo, b_hi) in chunks:
        pieces.extend(sorted(set(set_a[a_lo:a_hi])
                             & set(set_b[b_lo:b_hi])))
    assert pieces == sorted(set(set_a) & set(set_b))
