"""Property-based tests of the EIS datapath state machine.

Drives :class:`SetDatapath` with *arbitrary* (hardware-legal) sequences
of LD / LD_P / SOP / ST_S / ST operations over random streams and
checks that the datapath invariants hold at every step — the kind of
randomized instruction-sequence verification an RTL testbench would
run, complementing the well-formed-kernel tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import LANES, SENTINEL
from repro.core.datapath import FIFO_CAPACITY, SetDatapath
from repro.core.sop import valid_count
from repro.cpu import CoreConfig, Processor

OPS = ("ld_a", "ld_b", "ldp_a", "ldp_b", "sop", "st_s", "st")

sorted_stream = st.lists(st.integers(min_value=0, max_value=300),
                         unique=True, max_size=24).map(sorted)

op_sequence = st.lists(st.sampled_from(OPS), min_size=1, max_size=60)

which_strategy = st.sampled_from(["intersection", "union",
                                  "difference"])


def make_core():
    return Processor(CoreConfig("prop", dmem0_kb=16, num_lsus=1,
                                lsu_port_bits=128, sim_headroom_kb=0))


def drive(core, dp, operation, which):
    if operation == "ld_a":
        dp.op_ld(core, "a")
    elif operation == "ld_b":
        dp.op_ld(core, "b")
    elif operation == "ldp_a":
        dp.op_ldp(core, "a")
    elif operation == "ldp_b":
        dp.op_ldp(core, "b")
    elif operation == "sop":
        if dp.result_cnt.value == 0:  # kernels always ST_S between SOPs
            dp.op_sop(core, which)
    elif operation == "st_s":
        dp.op_st_s(core)
    elif operation == "st":
        dp.op_st(core)


def window_well_formed(window):
    """Real elements strictly sorted and prefixing the lanes."""
    count = valid_count(window)
    reals = window[:count]
    if any(value == SENTINEL for value in reals):
        return False
    if reals != sorted(reals) or len(set(reals)) != len(reals):
        return False
    return all(value == SENTINEL for value in window[count:])


@given(stream_a=sorted_stream, stream_b=sorted_stream,
       sequence=op_sequence, which=which_strategy,
       partial=st.booleans())
@settings(max_examples=150, deadline=None)
def test_invariants_under_arbitrary_sequences(stream_a, stream_b,
                                              sequence, which,
                                              partial):
    core = make_core()
    dp = SetDatapath(num_lsus=1, partial_load=partial)
    if stream_a:
        core.write_words(0x0, stream_a)
    if stream_b:
        core.write_words(0x1000, stream_b)
    dp.op_init(core)
    dp.ptr_a.value = 0x0
    dp.end_a.value = 4 * len(stream_a)
    dp.ptr_b.value = 0x1000
    dp.end_b.value = 0x1000 + 4 * len(stream_b)
    dp.ptr_c.value = 0x2000

    for operation in sequence:
        drive(core, dp, operation, which)
        # windows always hold a sorted real prefix + sentinel tail
        assert window_well_formed(dp.word_a.value)
        assert window_well_formed(dp.word_b.value)
        # counters stay within their hardware ranges
        assert 0 <= dp.load_cnt_a.value <= LANES
        assert 0 <= dp.load_cnt_b.value <= LANES
        assert 0 <= dp.fifo_cnt.value <= FIFO_CAPACITY
        assert dp.store_cnt.value in (0, LANES)
        assert 0 <= dp.result_cnt.value <= LANES
        # pointers never overrun their stream bounds
        assert dp.ptr_a.value <= dp.end_a.value + 12  # last padded blk
        assert dp.ptr_b.value <= dp.end_b.value + 12


@given(stream_a=sorted_stream, stream_b=sorted_stream,
       sequence=op_sequence, which=which_strategy)
@settings(max_examples=100, deadline=None)
def test_emitted_results_are_a_sorted_prefix_of_truth(stream_a,
                                                      stream_b,
                                                      sequence, which):
    """Whatever subsequence of operations runs, everything written to
    memory must be a prefix of the true result (monotonic output)."""
    core = make_core()
    dp = SetDatapath(num_lsus=1, partial_load=True)
    if stream_a:
        core.write_words(0x0, stream_a)
    if stream_b:
        core.write_words(0x1000, stream_b)
    dp.op_init(core)
    dp.ptr_a.value = 0x0
    dp.end_a.value = 4 * len(stream_a)
    dp.ptr_b.value = 0x1000
    dp.end_b.value = 0x1000 + 4 * len(stream_b)
    dp.ptr_c.value = 0x2000

    truth = {
        "intersection": sorted(set(stream_a) & set(stream_b)),
        "union": sorted(set(stream_a) | set(stream_b)),
        "difference": sorted(set(stream_a) - set(stream_b)),
    }[which]

    for operation in sequence:
        drive(core, dp, operation, which)
        emitted = core.read_words(0x2000, dp.count.value) \
            if dp.count.value else []
        assert emitted == truth[:len(emitted)]
