"""Property-based end-to-end tests: kernels vs Python ground truth.

Small random sets drive the full stack (assembler, simulator, EIS
datapath) against Python's set algebra on every extension variant.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kernels import run_merge_sort, run_set_operation
from repro.core.scalar_kernels import (run_scalar_merge_sort,
                                       run_scalar_set_operation)

sorted_set = st.lists(st.integers(min_value=0, max_value=500),
                      unique=True, max_size=40).map(sorted)

values_list = st.lists(st.integers(min_value=0, max_value=2**32 - 2),
                       max_size=60)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


@pytest.mark.parametrize("variant", [("DBA_2LSU_EIS", True),
                                     ("DBA_2LSU_EIS", False),
                                     ("DBA_1LSU_EIS", True),
                                     ("DBA_1LSU_EIS", False)],
                         ids=["2lsu-pl", "2lsu-nopl", "1lsu-pl",
                              "1lsu-nopl"])
class TestEisAgainstPythonSets:
    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_intersection(self, all_eis_processors, variant, set_a,
                          set_b):
        result, _ = run_set_operation(all_eis_processors[variant],
                                      "intersection", set_a, set_b)
        assert result == sorted(set(set_a) & set(set_b))

    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_union(self, all_eis_processors, variant, set_a, set_b):
        result, _ = run_set_operation(all_eis_processors[variant],
                                      "union", set_a, set_b)
        assert result == sorted(set(set_a) | set(set_b))

    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_difference(self, all_eis_processors, variant, set_a,
                        set_b):
        result, _ = run_set_operation(all_eis_processors[variant],
                                      "difference", set_a, set_b)
        assert result == sorted(set(set_a) - set(set_b))


class TestSortProperties:
    @given(values=values_list)
    @SLOW
    def test_eis_sort_equals_sorted(self, eis_1lsu_partial, values):
        result, _ = run_merge_sort(eis_1lsu_partial, values)
        assert result == sorted(values)

    @given(values=values_list)
    @SLOW
    def test_scalar_sort_equals_sorted(self, dba_1lsu, values):
        result, _ = run_scalar_merge_sort(dba_1lsu, values)
        assert result == sorted(values)


class TestScalarAgainstPythonSets:
    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_all_three_ops(self, dba_1lsu, set_a, set_b):
        for which, expected in (
                ("intersection", sorted(set(set_a) & set(set_b))),
                ("union", sorted(set(set_a) | set(set_b))),
                ("difference", sorted(set(set_a) - set(set_b)))):
            result, _ = run_scalar_set_operation(dba_1lsu, which,
                                                 set_a, set_b)
            assert result == expected


class TestCrossImplementationAgreement:
    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_eis_and_scalar_agree(self, eis_2lsu_partial, dba_1lsu,
                                  set_a, set_b):
        for which in ("intersection", "union", "difference"):
            eis_result, _ = run_set_operation(eis_2lsu_partial, which,
                                              set_a, set_b)
            scalar_result, _ = run_scalar_set_operation(dba_1lsu, which,
                                                        set_a, set_b)
            assert eis_result == scalar_result

    @given(set_a=sorted_set, set_b=sorted_set)
    @SLOW
    def test_partial_and_nonpartial_agree(self, eis_2lsu_partial,
                                          eis_2lsu_nopartial, set_a,
                                          set_b):
        for which in ("intersection", "union", "difference"):
            with_pl, _ = run_set_operation(eis_2lsu_partial, which,
                                           set_a, set_b)
            without, _ = run_set_operation(eis_2lsu_nopartial, which,
                                           set_a, set_b)
            assert with_pl == without
