"""Cache ablation: what if the 108Mini-class baseline had caches?

The DBA processors deliberately *omit* caches in favor of software-
managed local stores (Section 3.2).  This ablation runs the scalar
kernels on a 108Mini-class core with a data cache in front of its
system memory and quantifies the trade-off the paper's design makes.
"""

import pytest

from repro.core.scalar_kernels import run_scalar_set_operation
from repro.cpu import CacheConfig, CoreConfig, PipelineModel, Processor
from repro.workloads.sets import generate_set_pair


def mini_like(dcache=None):
    return Processor(CoreConfig(
        "108Mini_cached" if dcache else "108Mini_like",
        pipeline=PipelineModel(branch_taken_penalty=3,
                               ifetch_stall_per_redirect=2),
        num_lsus=1, lsu_port_bits=32,
        dmem0_kb=0, sysmem_kb=512, sysmem_wait_states=3,
        dcache=dcache, sim_headroom_kb=0))


@pytest.fixture(scope="module")
def workload():
    return generate_set_pair(1500, selectivity=0.5, seed=21)


class TestCacheAblation:
    def test_cache_accelerates_streaming_scans(self, workload):
        set_a, set_b = workload
        uncached = mini_like()
        cached = mini_like(CacheConfig("d", 8 * 1024, ways=2,
                                       line_bytes=32, miss_penalty=20))
        _r, base = run_scalar_set_operation(uncached, "intersection",
                                            set_a, set_b)
        result, fast = run_scalar_set_operation(cached, "intersection",
                                                set_a, set_b)
        assert result == sorted(set(set_a) & set(set_b))
        # sequential RID streams hit 7 of 8 words per line
        assert fast.cycles < base.cycles
        assert cached.dcache.hit_rate() > 0.8

    def test_cache_cannot_reach_local_store(self, workload):
        """Even a well-behaved cache keeps paying miss penalties that
        the software-managed local store never sees — part of the
        paper's argument for omitting cache logic."""
        from repro.configs.catalog import build_processor
        set_a, set_b = workload
        cached = mini_like(CacheConfig("d", 8 * 1024, ways=2,
                                       line_bytes=32, miss_penalty=20))
        local = build_processor("DBA_1LSU")
        _r, cached_stats = run_scalar_set_operation(
            cached, "intersection", set_a, set_b)
        _r, local_stats = run_scalar_set_operation(
            local, "intersection", set_a, set_b)
        assert local_stats.cycles < cached_stats.cycles

    def test_thrashing_working_set_degrades(self):
        """A cache smaller than one input set thrashes on re-scans;
        the local store's behavior is programmed, not heuristic."""
        tiny = mini_like(CacheConfig("d", 512, ways=1, line_bytes=32,
                                     miss_penalty=20))
        set_a, set_b = generate_set_pair(800, selectivity=0.5, seed=3)
        _r, first = run_scalar_set_operation(tiny, "intersection",
                                             set_a, set_b)
        misses_first = tiny.dcache.misses
        assert misses_first > 0
        # streaming access still misses every line on the second pass
        _r, second = run_scalar_set_operation(tiny, "intersection",
                                              set_a, set_b)
        assert tiny.dcache.misses >= misses_first
