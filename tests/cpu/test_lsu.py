"""Unit tests for the load-store units."""

import pytest

from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.errors import MemoryFault
from repro.cpu.lsu import LoadStoreUnit
from repro.cpu.memory import Memory, MemoryMap


def make_lsu(port_bits=128, wait_states=0, cache=None, cacheable=False):
    memory = Memory("m", 0x0, 1024, wait_states=wait_states)
    memory.cacheable = cacheable
    return LoadStoreUnit(0, port_bits, MemoryMap([memory]), cache), memory


class TestScalarTiming:
    def test_local_store_has_no_wait_states(self):
        lsu, _memory = make_lsu()
        _value, cost = lsu.load(0x10, 4, False)
        assert cost == 0

    def test_wait_states_passed_through(self):
        lsu, _memory = make_lsu(wait_states=3)
        _value, cost = lsu.load(0x10, 4, False)
        assert cost == 3
        assert lsu.store(0x10, 1, 4) == 3

    def test_cache_overrides_wait_states(self):
        cache = Cache(CacheConfig("d", 256, 1, 32, miss_penalty=8))
        lsu, _memory = make_lsu(wait_states=3, cache=cache,
                                cacheable=True)
        _value, cost_miss = lsu.load(0x10, 4, False)
        _value, cost_hit = lsu.load(0x14, 4, False)
        assert cost_miss == 8
        assert cost_hit == 0


class TestWideAccess:
    def test_wide_load_on_wide_port(self):
        lsu, memory = make_lsu(port_bits=128)
        memory.write_words(0x20, [1, 2, 3, 4])
        values, cost = lsu.load_block(0x20, 4)
        assert values == [1, 2, 3, 4]
        assert cost == 0

    def test_wide_access_serialized_on_narrow_port(self):
        lsu, memory = make_lsu(port_bits=32)
        memory.write_words(0x20, [1, 2, 3, 4])
        _values, cost = lsu.load_block(0x20, 4)
        assert cost == 3  # 4 beats over a 32-bit port

    def test_require_wide_port(self):
        lsu, _memory = make_lsu(port_bits=32)
        with pytest.raises(MemoryFault, match="port"):
            lsu.require_wide_port(128)
        wide, _memory = make_lsu(port_bits=128)
        wide.require_wide_port(128)  # no raise


class TestStats:
    def test_counters(self):
        lsu, memory = make_lsu(wait_states=2)
        memory.write_words(0, [0, 0])
        lsu.load(0, 4, False)
        lsu.store(4, 9, 4)
        assert lsu.loads == 1
        assert lsu.stores == 1
        assert lsu.stall_cycles == 4
        lsu.reset_stats()
        assert lsu.stall_cycles == 0
