"""Processor execution and timing-model tests."""

import pytest

from repro.cpu import CoreConfig, PipelineModel, Processor
from repro.cpu.errors import (ConfigurationError, ExecutionLimitExceeded,
                              MemoryFault)


def make_processor(**kwargs):
    kwargs.setdefault("dmem0_kb", 16)
    kwargs.setdefault("sim_headroom_kb", 0)
    return Processor(CoreConfig("t", **kwargs))


def cycles_of(body, pipeline=None, regs=None):
    processor = Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0,
                                     pipeline=pipeline))
    processor.load_program("main:\n%s\n  halt\n" % body)
    return processor.run(entry="main", regs=regs or {}).cycles


class TestExecutionBasics:
    def test_requires_loaded_program(self):
        with pytest.raises(ConfigurationError, match="no program"):
            make_processor().run()

    def test_entry_by_label_and_index(self):
        processor = make_processor()
        processor.load_program(
            "a:\n  movi a2, 1\n  halt\nb:\n  movi a2, 2\n  halt")
        assert processor.run(entry="b").reg("a2") == 2
        assert processor.run(entry=0).reg("a2") == 1

    def test_register_arguments_by_name_and_index(self):
        processor = make_processor()
        processor.load_program("main:\n  add a4, a2, a3\n  halt")
        result = processor.run(entry="main", regs={"a2": 2, 3: 40})
        assert result.reg("a4") == 42

    def test_max_cycles_guard(self):
        processor = make_processor()
        processor.load_program("spin:\n  j spin\n  halt")
        with pytest.raises(ExecutionLimitExceeded):
            processor.run(entry="spin", max_cycles=100)

    def test_falling_into_bundle_tail_faults(self):
        from repro.configs.catalog import build_processor
        processor = build_processor("DBA_2LSU_EIS")
        program = processor.assembler.assemble(
            "main:\n  { ld_ldp_shuffle }\n  halt")
        processor.load_program(program)
        # jumping into the middle of the 64-bit bundle is a fetch error
        with pytest.raises(MemoryFault, match="bundle tail"):
            processor.run(entry=1)

    def test_run_result_metadata(self):
        processor = make_processor()
        processor.load_program("main:\n  nop\n  nop\n  halt")
        result = processor.run(entry="main")
        assert result.instructions == 3
        assert result.cpi() == pytest.approx(result.cycles / 3)
        assert result.throughput_meps(300, 100) \
            == pytest.approx(300 * 100 / result.cycles)


class TestTimingModel:
    def test_straightline_alu_is_one_cpi(self):
        assert cycles_of("  nop\n  nop\n  nop") == 4

    def test_taken_branch_pays_penalty(self):
        pipeline = PipelineModel(branch_taken_penalty=3)
        straight = cycles_of("  beq a2, a3, t\n  nop\nt:\n  nop",
                             pipeline=pipeline,
                             regs={"a2": 0, "a3": 1})  # not taken
        taken = cycles_of("  beq a2, a3, t\n  nop\nt:\n  nop",
                          pipeline=pipeline,
                          regs={"a2": 1, "a3": 1})
        # taken skips one instruction (-1) but pays 3 bubbles (+3)
        assert taken == straight + 2

    def test_direct_jump_costs_single_cycle(self):
        # j is resolved in fetch: 1 issue, no bubbles
        assert cycles_of("  j t\nt:\n  nop") == 3

    def test_load_use_interlock(self):
        processor = make_processor()
        processor.write_words(0x100, [7])
        no_use = ("  l32i a2, a4, 0\n  nop\n  add a3, a2, a2")
        use = ("  l32i a2, a4, 0\n  add a3, a2, a2\n  nop")
        processor.load_program("main:\n%s\n  halt" % no_use)
        baseline = processor.run(entry="main", regs={"a4": 0x100}).cycles
        processor.load_program("main:\n%s\n  halt" % use)
        stalled = processor.run(entry="main", regs={"a4": 0x100}).cycles
        assert stalled == baseline + 1

    def test_memory_wait_states_charged(self):
        fast = make_processor()  # local store: no wait states
        fast.write_words(0x100, [1])
        fast.load_program("main:\n  l32i a2, a3, 0\n  halt")
        fast_cycles = fast.run(entry="main", regs={"a3": 0x100}).cycles
        slow = Processor(CoreConfig("t", dmem0_kb=0, sysmem_kb=16,
                                    sysmem_wait_states=5,
                                    sim_headroom_kb=0))
        slow.write_words(0x100, [1])
        slow.load_program("main:\n  l32i a2, a3, 0\n  halt")
        slow_cycles = slow.run(entry="main", regs={"a3": 0x100}).cycles
        assert slow_cycles == fast_cycles + 5

    def test_division_is_multicycle(self):
        pipeline = PipelineModel(div_cycles=13)
        div = cycles_of("  quou a2, a3, a4", pipeline=pipeline,
                        regs={"a3": 100, "a4": 7})
        add = cycles_of("  add a2, a3, a4", pipeline=pipeline)
        assert div == add + 12

    def test_ret_pays_indirect_penalty(self):
        pipeline = PipelineModel(indirect_penalty=2, call_penalty=0)
        cycles = cycles_of("  call s\n  j out\ns:\n  ret\nout:\n  nop",
                           pipeline=pipeline)
        # call(1) + ret(1+2) + j(1) + nop(1) + halt(1) = 7
        assert cycles == 7

    def test_stats_collected(self):
        processor = make_processor()
        processor.write_words(0x100, [1, 2])
        processor.load_program(
            "main:\n  l32i a2, a4, 0\n  l32i a3, a4, 4\n"
            "  add a2, a2, a3\n  s32i a2, a4, 8\n  halt")
        result = processor.run(entry="main", regs={"a4": 0x100})
        assert result.stats["lsu_loads"] == [2]
        assert result.stats["lsu_stores"] == [1]


class TestUserRegisters:
    def test_unknown_user_register_faults(self):
        processor = make_processor()
        processor.load_program("main:\n  rur a2, 99\n  halt")
        with pytest.raises(MemoryFault, match="user register"):
            processor.run(entry="main")

    def test_duplicate_registration_rejected(self):
        processor = make_processor()
        processor.register_user_register("x", lambda: 0, lambda v: None)
        with pytest.raises(ConfigurationError, match="already"):
            processor.register_user_register("x", lambda: 0,
                                             lambda v: None)


class TestConfigValidation:
    def test_two_lsus_require_dmem1(self):
        with pytest.raises(ConfigurationError, match="dmem1"):
            CoreConfig("bad", num_lsus=2)

    def test_bad_port_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig("bad", lsu_port_bits=64 + 1)

    def test_bad_lsu_count(self):
        with pytest.raises(ConfigurationError):
            CoreConfig("bad", num_lsus=3, dmem1_kb=16)
