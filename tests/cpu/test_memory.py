"""Unit tests for the data memories and the memory map."""

import pytest

from repro.cpu.errors import MemoryFault
from repro.cpu.memory import Memory, MemoryMap


@pytest.fixture()
def mem():
    return Memory("dmem", 0x1000, 256)


class TestScalarAccess:
    def test_word_round_trip(self, mem):
        mem.store(0x1000, 0xDEADBEEF)
        assert mem.load(0x1000) == 0xDEADBEEF

    def test_word_masks_high_bits(self, mem):
        mem.store(0x1004, 0x1_0000_0002)
        assert mem.load(0x1004) == 2

    def test_halfword_lanes(self, mem):
        mem.store(0x1000, 0x11223344)
        assert mem.load(0x1000, 2) == 0x3344
        assert mem.load(0x1002, 2) == 0x1122

    def test_byte_lanes(self, mem):
        mem.store(0x1000, 0x11223344)
        assert [mem.load(0x1000 + i, 1) for i in range(4)] \
            == [0x44, 0x33, 0x22, 0x11]

    def test_signed_halfword(self, mem):
        mem.store(0x1000, 0x0000FFFF)
        assert mem.load(0x1000, 2, signed=True) == 0xFFFFFFFF

    def test_subword_store_preserves_neighbours(self, mem):
        mem.store(0x1000, 0x11223344)
        mem.store(0x1001, 0xAB, 1)
        assert mem.load(0x1000) == 0x1122AB44
        mem.store(0x1002, 0xCDEF, 2)
        assert mem.load(0x1000) == 0xCDEFAB44

    @pytest.mark.parametrize("addr,size", [
        (0x1001, 4), (0x1002, 4), (0x1001, 2),
    ])
    def test_misaligned_faults(self, mem, addr, size):
        with pytest.raises(MemoryFault, match="misaligned"):
            mem.load(addr, size)
        with pytest.raises(MemoryFault, match="misaligned"):
            mem.store(addr, 0, size)

    def test_out_of_range_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.load(0x0FFC)
        with pytest.raises(MemoryFault):
            mem.load(0x1100)


class TestWideAccess:
    def test_block_round_trip(self, mem):
        mem.store_block(0x1010, [1, 2, 3, 4])
        assert mem.load_block(0x1010, 4) == [1, 2, 3, 4]

    def test_block_masks_values(self, mem):
        mem.store_block(0x1000, [1 << 35, 2, 3, 4])
        assert mem.load_block(0x1000, 4)[0] == 0

    def test_block_overrun_faults(self, mem):
        with pytest.raises(MemoryFault, match="runs off"):
            mem.load_block(0x10FC, 4)

    def test_misaligned_block_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.load_block(0x1002, 4)


class TestHostAccess:
    def test_bulk_round_trip(self, mem):
        mem.write_words(0x1000, list(range(10)))
        assert mem.read_words(0x1000, 10) == list(range(10))

    def test_bulk_does_not_count_as_simulated_access(self, mem):
        mem.write_words(0x1000, [1])
        mem.read_words(0x1000, 1)
        assert mem.read_accesses == 0
        assert mem.write_accesses == 0

    def test_bulk_overrun_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.write_words(0x10F8, [1, 2, 3])


class TestStats:
    def test_access_counters(self, mem):
        mem.store(0x1000, 1)
        mem.load(0x1000)
        mem.load_block(0x1000, 4)
        assert mem.write_accesses == 1
        assert mem.read_accesses == 2
        mem.reset_stats()
        assert mem.read_accesses == 0


class TestMemoryMap:
    def test_routing(self):
        a = Memory("a", 0x0, 64)
        b = Memory("b", 0x1000, 64)
        memory_map = MemoryMap([b, a])
        assert memory_map.region_for(0x10) is a
        assert memory_map.region_for(0x1010) is b

    def test_unmapped_faults(self):
        memory_map = MemoryMap([Memory("a", 0x0, 64)])
        with pytest.raises(MemoryFault, match="unmapped"):
            memory_map.region_for(0x100)

    def test_overlap_rejected(self):
        with pytest.raises(MemoryFault, match="overlap"):
            MemoryMap([Memory("a", 0x0, 128), Memory("b", 0x40, 64)])

    def test_bad_size_rejected(self):
        with pytest.raises(MemoryFault):
            Memory("odd", 0, 13)
