"""Unit tests for the cache timing model."""

import pytest

from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.errors import ConfigurationError


def make_cache(size=1024, ways=2, line=32, miss=10):
    return Cache(CacheConfig("d", size, ways, line, miss))


class TestBasicBehavior:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x100, False) == 10
        assert cache.access(0x100, False) == 0
        assert cache.hits == 1
        assert cache.misses == 1

    def test_same_line_different_words_hit(self):
        cache = make_cache()
        cache.access(0x100, False)
        assert cache.access(0x11C, False) == 0  # same 32B line

    def test_different_lines_miss(self):
        cache = make_cache()
        cache.access(0x100, False)
        assert cache.access(0x120, False) == 10

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0x0, False)
        cache.access(0x0, False)
        cache.access(0x0, False)
        assert cache.hit_rate() == pytest.approx(2 / 3)


class TestReplacement:
    def test_lru_eviction(self):
        # 2 ways, 16 sets: addresses mapping to the same set are
        # line-size * set-count apart.
        cache = make_cache(size=1024, ways=2, line=32)
        stride = 32 * 16
        cache.access(0 * stride, False)
        cache.access(1 * stride, False)
        cache.access(0 * stride, False)       # refresh LRU of way 0
        cache.access(2 * stride, False)       # evicts address stride*1
        assert cache.access(0 * stride, False) == 0
        assert cache.access(1 * stride, False) == 10  # was evicted

    def test_dirty_eviction_pays_writeback(self):
        cache = make_cache(size=1024, ways=1, line=32, miss=10)
        stride = 32 * 32
        cache.access(0, True)                  # dirty line
        cost = cache.access(stride, False)     # evicts dirty line
        assert cost == 20                      # miss + writeback
        assert cache.writebacks == 1

    def test_clean_eviction_is_cheap(self):
        cache = make_cache(size=1024, ways=1, line=32, miss=10)
        stride = 32 * 32
        cache.access(0, False)
        assert cache.access(stride, False) == 10
        assert cache.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=1024, ways=1, line=32, miss=10)
        stride = 32 * 32
        cache.access(0, False)
        cache.access(4, True)                  # write hit -> dirty
        assert cache.access(stride, False) == 20


class TestConfigValidation:
    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, 3, 32, 10)

    def test_reset(self):
        cache = make_cache()
        cache.access(0, True)
        cache.reset()
        assert cache.hits == cache.misses == 0
        assert cache.access(0, False) == 10  # cold again
