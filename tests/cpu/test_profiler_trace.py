"""Unit tests for the cycle profiler and pipeline tracer."""

from repro.cpu import CoreConfig, CycleProfiler, PipelineTracer, Processor


def make_processor():
    return Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0))


SOURCE = """
main:
  movi a2, 5
loop:
  addi a2, a2, -1
  bnez a2, loop
tail:
  nop
  halt
"""


class TestProfiler:
    def test_total_cycles_match_run(self):
        processor = make_processor()
        processor.load_program(SOURCE)
        profiler = CycleProfiler()
        result = processor.run_profiled(profiler, entry="main")
        assert profiler.total_cycles == result.cycles

    def test_hotspots_identify_the_loop(self):
        processor = make_processor()
        program = processor.load_program(SOURCE)
        profiler = CycleProfiler()
        processor.run_profiled(profiler, entry="main")
        hotspots = profiler.hotspots(program)
        assert hotspots[0].region == "loop"
        assert hotspots[0].visits == 10  # 5 iterations x 2 instructions
        assert hotspots[0].share > 0.5

    def test_report_renders(self):
        processor = make_processor()
        program = processor.load_program(SOURCE)
        profiler = CycleProfiler()
        processor.run_profiled(profiler, entry="main")
        text = profiler.report(program)
        assert "loop" in text
        assert "share" in text

    def test_profiled_run_matches_plain_run_cycles(self):
        plain = make_processor()
        plain.load_program(SOURCE)
        expected = plain.run(entry="main").cycles
        profiled = make_processor()
        profiled.load_program(SOURCE)
        result = profiled.run_profiled(CycleProfiler(), entry="main")
        assert result.cycles == expected


ENTRYLESS_SOURCE = """
  movi a2, 3
loop:
  addi a2, a2, -1
  bnez a2, loop
  halt
"""

ALIASED_SOURCE = """
main:
start:
  movi a2, 2
loop:
  addi a2, a2, -1
  bnez a2, loop
  halt
"""


class TestHotspotRegions:
    def test_entry_region_when_first_label_past_zero(self):
        processor = make_processor()
        program = processor.load_program(ENTRYLESS_SOURCE)
        profiler = CycleProfiler()
        processor.run_profiled(profiler, entry=0)
        hotspots = profiler.hotspots(program)
        regions = {hotspot.region: hotspot for hotspot in hotspots}
        assert "<entry>" in regions
        assert regions["<entry>"].start == 0
        assert regions["<entry>"].visits == 1  # the movi before 'loop'
        assert "loop" in regions
        assert sum(h.cycles for h in hotspots) == profiler.total_cycles

    def test_no_labels_at_all(self):
        processor = make_processor()
        program = processor.load_program("  movi a2, 1\n  halt\n")
        profiler = CycleProfiler()
        processor.run_profiled(profiler, entry=0)
        hotspots = profiler.hotspots(program)
        assert len(hotspots) == 1
        assert hotspots[0].region == "<entry>"
        assert hotspots[0].end == len(program.items)

    def test_aliased_labels_merged(self):
        processor = make_processor()
        program = processor.load_program(ALIASED_SOURCE)
        profiler = CycleProfiler()
        processor.run_profiled(profiler, entry="main")
        hotspots = profiler.hotspots(program)
        regions = [hotspot.region for hotspot in hotspots]
        assert "main/start" in regions
        # no zero-length ghost region for the dropped alias
        assert "main" not in regions and "start" not in regions
        assert sum(h.cycles for h in hotspots) == profiler.total_cycles


class TestTracer:
    def test_events_recorded_in_issue_order(self):
        processor = make_processor()
        processor.load_program(SOURCE)
        tracer = PipelineTracer(limit=100)
        processor.run(entry="main", trace=tracer)
        cycles = [event[0] for event in tracer.events]
        assert cycles == sorted(cycles)
        names = [event[2] for event in tracer.events]
        assert names[0] == "movi"

    def test_limit_respected(self):
        processor = make_processor()
        processor.load_program(SOURCE)
        tracer = PipelineTracer(limit=3)
        processor.run(entry="main", trace=tracer)
        assert len(tracer.events) == 3

    def test_loop_cycles_per_iteration(self):
        processor = make_processor()
        processor.load_program(SOURCE)
        tracer = PipelineTracer()
        processor.run(entry="main", trace=tracer)
        per_iteration = tracer.loop_cycles_per_iteration("addi")
        assert per_iteration is not None
        assert per_iteration > 0

    def test_render(self):
        processor = make_processor()
        processor.load_program(SOURCE)
        tracer = PipelineTracer()
        processor.run(entry="main", trace=tracer)
        text = tracer.render(count=5)
        assert "cycle" in text
        assert "movi" in text
