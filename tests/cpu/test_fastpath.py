"""Differential tests: superblock fast path vs reference interpreter.

The equivalence contract (docs/PERFORMANCE.md): for every run that
reaches ``halt``, the compiled fast path must match the reference
interpreter bit-for-bit and cycle-for-cycle — cycles, instructions,
final registers and the legacy ``RunStats`` keys.  The suite drives
every builtin kernel on every catalog configuration with seeded random
workloads, plus structural and regression tests of the machinery.
"""

import random

import pytest

from repro.configs.catalog import CONFIG_NAMES, build_processor, has_eis
from repro.core.compression import run_decompress
from repro.core.kernels import (clear_portable_cache, portable_cache_stats,
                                run_merge_sort, run_set_operation)
from repro.core.scalar_kernels import (run_scalar_merge_sort,
                                       run_scalar_set_operation)
from repro.cpu.errors import ExecutionLimitExceeded, MemoryFault
from repro.cpu.fastpath import FastProgram, compile_fastpath
from repro.cpu.memory import DMEM1_BASE
from repro.cpu.profiler import CycleProfiler
from repro.cpu.trace import PipelineTracer

SET_OPS = ("intersection", "union", "difference")
EIS_CONFIGS = tuple(name for name in CONFIG_NAMES if has_eis(name))


def _seeded_sets(seed, size=300, universe=30_000):
    rng = random.Random(seed)
    return (sorted(rng.sample(range(universe), size)),
            sorted(rng.sample(range(universe), size)))


def _seeded_values(seed, size=256):
    rng = random.Random(seed)
    return [rng.randrange(1 << 30) for _ in range(size)]


@pytest.fixture(scope="module")
def processors():
    built = {}

    def get(name, **kwargs):
        key = (name, tuple(sorted(kwargs.items())))
        if key not in built:
            built[key] = build_processor(name, **kwargs)
        return built[key]

    return get


def assert_differential(monkeypatch, invoke, expect_fast=True):
    """Run *invoke* on both paths and assert identical outcomes."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    out_fast, res_fast = invoke()
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    out_ref, res_ref = invoke()
    monkeypatch.delenv("REPRO_NO_FASTPATH")
    if expect_fast:
        assert res_fast.stats.metric("cpu.run.fastpath") == 1
    assert res_ref.stats.metric("cpu.run.fastpath") == 0
    assert out_fast == out_ref
    assert res_fast.cycles == res_ref.cycles
    assert res_fast.instructions == res_ref.instructions
    assert res_fast.regs == res_ref.regs
    assert dict(res_fast.stats) == dict(res_ref.stats)
    return res_fast


# ---------------------------------------------------------------------------
# every builtin kernel x every catalog configuration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("which", SET_OPS)
@pytest.mark.parametrize("config", CONFIG_NAMES)
def test_scalar_set_kernels_match(processors, monkeypatch, config, which):
    processor = processors(config)
    set_a, set_b = _seeded_sets(hash((config, which)) & 0xFFFF)
    result = assert_differential(
        monkeypatch,
        lambda: run_scalar_set_operation(processor, which, set_a, set_b))
    assert result.cycles > 0


@pytest.mark.parametrize("config", CONFIG_NAMES)
def test_scalar_sort_kernel_matches(processors, monkeypatch, config):
    processor = processors(config)
    values = _seeded_values(len(config))
    out = assert_differential(
        monkeypatch,
        lambda: run_scalar_merge_sort(processor, values))
    assert out.instructions > 0


@pytest.mark.parametrize("which", SET_OPS)
@pytest.mark.parametrize("partial", (True, False))
@pytest.mark.parametrize("config", EIS_CONFIGS)
def test_eis_set_kernels_match(processors, monkeypatch, config, partial,
                               which):
    processor = processors(config, partial_load=partial)
    set_a, set_b = _seeded_sets(hash((config, which, partial)) & 0xFFFF)
    assert_differential(
        monkeypatch,
        lambda: run_set_operation(processor, which, set_a, set_b))


@pytest.mark.parametrize("config", EIS_CONFIGS)
def test_eis_sort_kernel_matches(processors, monkeypatch, config):
    processor = processors(config)
    values = _seeded_values(99, size=512)
    assert_differential(
        monkeypatch, lambda: run_merge_sort(processor, values))


def test_decompress_kernel_matches(monkeypatch):
    processor = build_processor("DBA_2LSU_EIS", compression=True)
    values, _ = _seeded_sets(5, size=200)
    assert_differential(
        monkeypatch, lambda: run_decompress(processor, values))


# ---------------------------------------------------------------------------
# fast-path machinery
# ---------------------------------------------------------------------------

def test_superblocks_cover_leaders(processors):
    processor = processors("DBA_1LSU")
    program = processor.load_program("""
main:
  movi a2, 0
  movi a3, 10
loop:
  addi a2, a2, 1
  bltu a2, a3, loop
  halt
""")
    fast = processor._fast
    assert isinstance(fast, FastProgram)
    # entry and both labels start blocks; the conditional branch keeps
    # its not-taken path inline instead of splitting the region
    assert fast.accepts(program.label("main"))
    assert fast.accepts(program.label("loop"))
    assert fast.block_count == 2
    assert "def _b0(" in fast.source


def test_indirect_jumps_disable_compilation(processors):
    processor = processors("DBA_1LSU")
    processor.load_program("""
main:
  jal sub
  halt
sub:
  ret
""")
    assert processor._fast is None
    result = processor.run(entry="main")
    assert result.stats.metric("cpu.run.fastpath") == 0


def test_escape_hatch_forces_interpreter(processors, monkeypatch):
    processor = processors("DBA_1LSU")
    processor.load_program("main:\n  movi a2, 7\n  halt")
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    result = processor.run(entry="main")
    assert result.stats.metric("cpu.run.fastpath") == 0
    assert result.reg("a2") == 7


def test_run_interpreted_matches_fast_run(processors):
    processor = processors("DBA_1LSU")
    values = _seeded_values(3, size=64)
    out_fast, fast = run_scalar_merge_sort(processor, values)
    out_ref, ref = run_scalar_merge_sort(processor, values)
    # force the reference loop explicitly through the public API
    processor.write_words(0, values)
    interp = processor.run_interpreted(entry="main", regs={
        "a2": 0, "a3": len(values) * 4, "a4": len(values) * 4 + 16})
    assert interp.stats.metric("cpu.run.fastpath") == 0
    assert (interp.cycles, interp.instructions) == (fast.cycles,
                                                    fast.instructions)
    assert out_fast == out_ref


def test_traced_run_keeps_interpreter_and_cycles(processors):
    processor = processors("DBA_1LSU")
    processor.load_program("""
main:
  movi a2, 0
  movi a3, 50
loop:
  addi a2, a2, 1
  bltu a2, a3, loop
  halt
""")
    plain = processor.run(entry="main")
    assert plain.stats.metric("cpu.run.fastpath") == 1
    tracer = PipelineTracer()
    traced = processor.run(entry="main", trace=tracer)
    assert traced.stats.metric("cpu.run.fastpath") == 0
    assert traced.cycles == plain.cycles
    assert traced.instructions == plain.instructions


def test_non_leader_entry_falls_back_to_interpreter(processors):
    processor = processors("DBA_1LSU")
    program = processor.load_program("""
main:
  movi a2, 1
  addi a2, a2, 2
  halt
""")
    assert not processor._fast.accepts(program.label("main") + 1)
    result = processor.run(entry=1, regs={"a2": 1})
    assert result.stats.metric("cpu.run.fastpath") == 0
    assert result.reg("a2") == 3


def test_max_cycles_guard_on_fast_path(processors):
    processor = processors("DBA_1LSU")
    processor.load_program("main:\n  j main")
    with pytest.raises(ExecutionLimitExceeded):
        processor.run(entry="main", max_cycles=1000)


def test_fastpath_requires_standard_register_file(processors):
    processor = processors("DBA_1LSU")
    program = processor.load_program("main:\n  halt")
    steps = processor._steps
    class Narrow:
        _mask = 0xFFFF
    class Shim:
        regs = Narrow()
        lsus = processor.lsus
        _dmem1_base = 1
        _dmem1_limit = 0
    assert compile_fastpath(Shim(), program, steps) is None


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------

def test_run_profiled_bundle_tail_raises_memoryfault(processors):
    """run_profiled used to die with AttributeError on bundle tails."""
    processor = processors("DBA_2LSU_EIS")
    processor.load_program("""
main:
  { ld_a }
  halt
""")
    profiler = CycleProfiler()
    with pytest.raises(MemoryFault, match="bundle tail"):
        processor.run_profiled(profiler, entry=1)


def test_run_bundle_tail_entry_raises_memoryfault(processors):
    processor = processors("DBA_2LSU_EIS")
    processor.load_program("""
main:
  { ld_a }
  halt
""")
    with pytest.raises(MemoryFault, match="bundle tail"):
        processor.run(entry=1)


def test_lsu_for_uses_precomputed_range():
    dual = build_processor("DBA_2LSU_EIS")
    assert dual.lsu_for(DMEM1_BASE) is dual.lsus[1]
    assert dual.lsu_for(DMEM1_BASE - 4) is dual.lsus[0]
    assert dual._dmem1_base == DMEM1_BASE
    single = build_processor("DBA_1LSU")
    # empty sentinel range: one comparison chain, always LSU0
    assert single._dmem1_base > single._dmem1_limit
    assert single.lsu_for(DMEM1_BASE) is single.lsus[0]


def test_portable_cache_shares_compiles_across_processors():
    clear_portable_cache()
    set_a, set_b = _seeded_sets(11, size=120)
    first = build_processor("DBA_2LSU_EIS")
    second = build_processor("DBA_2LSU_EIS")
    out_first, res_first = run_set_operation(first, "intersection",
                                             set_a, set_b)
    out_second, res_second = run_set_operation(second, "intersection",
                                               set_a, set_b)
    stats = portable_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert out_first == out_second
    assert res_first.cycles == res_second.cycles
    assert res_first.regs == res_second.regs


def test_program_reload_reuses_compiled_steps(processors):
    processor = processors("DBA_1LSU")
    program = processor.load_program("main:\n  movi a2, 9\n  halt")
    steps = processor._steps
    fast = processor._fast
    processor.load_program(program)
    assert processor._steps is steps
    assert processor._fast is fast
