"""Paranoid lockstep mode and graceful fast-path degradation.

``REPRO_PARANOID=1`` replays every fast-path run on the reference
interpreter and compares (pc, cycle, regs) at superblock boundaries
(docs/ROBUSTNESS.md).  An *internal* fast-path error instead rolls the
machine back and degrades to the interpreter, reported on the
``cpu.run.fallback`` gauge.
"""

import pytest

from repro.configs.catalog import build_processor
from repro.cpu.errors import DivergenceError
from repro.cpu.processor import _RunGuard

LOOP = """
main:
  movi a2, 0
  movi a3, 40
  movi a5, 0
loop:
  addi a2, a2, 1
  addi a5, a5, 3
  bltu a2, a3, loop
  halt
"""


def _wrap_block(processor, leader, wrapper):
    """Replace one compiled block, returning an undo callable."""
    fast = processor._fast
    original = fast.blocks[leader]
    fast.blocks[leader] = wrapper(original)

    def undo():
        fast.blocks[leader] = original
    return undo


class TestParanoidPasses:
    def test_clean_run_is_replayed_and_checked(self, monkeypatch):
        processor = build_processor("DBA_1LSU")
        program = processor.load_program(LOOP)
        plain = processor.run(entry="main")
        monkeypatch.setenv("REPRO_PARANOID", "1")
        checked = processor.run(entry="main")
        assert processor.last_paranoid["ok"] is True
        assert processor.last_paranoid["replayed"] is True
        assert processor.last_paranoid["checked"] > 0
        assert checked.cycles == plain.cycles
        assert checked.instructions == plain.instructions
        assert checked.regs == plain.regs
        # the run still reports as a fast-path run, which it was
        assert checked.stats.metric("cpu.run.fastpath") == 1
        assert program.label("main") == 0

    def test_scalar_kernel_under_paranoid(self, monkeypatch):
        from repro.core.scalar_kernels import run_scalar_set_operation
        from repro.workloads.sets import generate_set_pair
        processor = build_processor("DBA_1LSU")
        set_a, set_b = generate_set_pair(150, selectivity=0.5, seed=3)
        out_plain, res_plain = run_scalar_set_operation(
            processor, "intersection", set_a, set_b)
        monkeypatch.setenv("REPRO_PARANOID", "1")
        out_checked, res_checked = run_scalar_set_operation(
            processor, "intersection", set_a, set_b)
        assert processor.last_paranoid["ok"] is True
        assert out_checked == out_plain
        assert res_checked.cycles == res_plain.cycles


class TestParanoidCatchesDivergence:
    def test_corrupted_block_raises_divergence_error(self, monkeypatch):
        processor = build_processor("DBA_1LSU")
        program = processor.load_program(LOOP)
        leader = program.label("loop")

        def corrupting(original):
            def block(core, rv, reg_ready, cycle, issued, taken,
                      interlock, max_cycles):
                out = original(core, rv, reg_ready, cycle, issued,
                               taken, interlock, max_cycles)
                rv[5] ^= 0x10  # silently corrupt a5 (not control flow)
                return out
            return block

        undo = _wrap_block(processor, leader, corrupting)
        try:
            monkeypatch.setenv("REPRO_PARANOID", "1")
            with pytest.raises(DivergenceError):
                processor.run(entry="main")
            assert processor.last_paranoid["ok"] is False
        finally:
            undo()

    def test_unchecked_run_misses_the_same_corruption(self, monkeypatch):
        """The control: without paranoid mode the bug sails through."""
        processor = build_processor("DBA_1LSU")
        program = processor.load_program(LOOP)
        leader = program.label("loop")

        def corrupting(original):
            def block(core, rv, reg_ready, cycle, issued, taken,
                      interlock, max_cycles):
                out = original(core, rv, reg_ready, cycle, issued,
                               taken, interlock, max_cycles)
                rv[5] ^= 0x10
                return out
            return block

        undo = _wrap_block(processor, leader, corrupting)
        try:
            monkeypatch.delenv("REPRO_PARANOID", raising=False)
            result = processor.run(entry="main")
            assert result.reg("a5") != 40 * 3
        finally:
            undo()


class TestGracefulDegradation:
    def test_internal_error_falls_back_bit_identically(self):
        processor = build_processor("DBA_1LSU")
        processor.load_program(LOOP)
        reference = processor.run_interpreted(entry="main")

        def exploding(original):
            state = {"armed": True}

            def block(core, rv, reg_ready, cycle, issued, taken,
                      interlock, max_cycles):
                if state["armed"] and issued > 20:
                    state["armed"] = False
                    raise ValueError("synthetic fast-path bug")
                return original(core, rv, reg_ready, cycle, issued,
                                taken, interlock, max_cycles)
            return block

        undo = _wrap_block(processor, processor._program.label("loop"),
                           exploding)
        try:
            result = processor.run(entry="main")
        finally:
            undo()
        assert result.cycles == reference.cycles
        assert result.instructions == reference.instructions
        assert result.regs == reference.regs
        assert result.stats.metric("cpu.run.fallback") == 1
        assert result.stats.metric("cpu.run.fastpath") == 0

    def test_clean_runs_report_no_fallback(self, dba_1lsu):
        dba_1lsu.load_program(LOOP)
        result = dba_1lsu.run(entry="main")
        assert result.stats.metric("cpu.run.fallback") == 0

    def test_compile_failure_degrades_at_load_time(self, monkeypatch):
        from repro.cpu import fastpath
        processor = build_processor("DBA_1LSU")

        def broken_compile(*args, **kwargs):
            raise RuntimeError("synthetic compiler bug")

        monkeypatch.setattr(fastpath, "compile_fastpath", broken_compile)
        monkeypatch.setattr("repro.cpu.processor.compile_fastpath",
                            broken_compile)
        processor.load_program("main:\n  movi a2, 3\n  halt")
        result = processor.run(entry="main")
        assert result.reg("a2") == 3
        assert result.stats.metric("cpu.run.fallback") == 1
        assert result.stats.metric("cpu.run.fastpath") == 0


class TestRunGuard:
    def test_rollback_restores_registers_and_memory(self):
        processor = build_processor("DBA_1LSU")
        processor.load_program("""
main:
  movi a2, 0
  movi a3, 1234
  s32i a3, a2, 0
  halt
""")
        processor.write_words(0, [7])
        before_reg = list(processor.regs._values)
        # run_interpreted: Processor.run would layer its own fast-path
        # guard over this one, and undo journals do not nest
        guard = _RunGuard(processor)
        processor.run_interpreted(entry="main")
        assert processor.read_words(0, 1) == [1234]
        assert guard.restore()
        assert processor.read_words(0, 1) == [7]
        assert list(processor.regs._values) == before_reg

    def test_discard_keeps_the_run(self):
        processor = build_processor("DBA_1LSU")
        processor.load_program("""
main:
  movi a2, 0
  movi a3, 99
  s32i a3, a2, 0
  halt
""")
        guard = _RunGuard(processor)
        processor.run_interpreted(entry="main")
        guard.discard()
        assert processor.read_words(0, 1) == [99]
