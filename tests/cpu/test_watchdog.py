"""Unified watchdog: identical behavior on every execution path.

The guardrail contract (docs/ROBUSTNESS.md): a runaway run raises
:class:`ExecutionLimitExceeded` with the same message format whether it
was caught by the reference interpreter, the profiler loop, or a
compiled superblock — campaign tooling classifies hangs by exception
type and the attached ``pc``/``cycle``/``max_cycles`` attributes.
"""

import pytest

from repro.cpu.errors import ExecutionLimitExceeded
from repro.cpu.watchdog import DEFAULT_MAX_CYCLES, Watchdog, trip

SPIN = "main:\n  j main"


class TestTrip:
    def test_cycle_flavor_message_and_attributes(self):
        with pytest.raises(ExecutionLimitExceeded) as info:
            trip(1000, 7, 1001, 500)
        assert str(info.value) == "watchdog: exceeded 1000 cycles at pc=7"
        assert info.value.pc == 7
        assert info.value.cycle == 1001
        assert info.value.max_cycles == 1000

    def test_no_progress_flavor(self):
        with pytest.raises(ExecutionLimitExceeded, match="no progress"):
            trip(1000, 3, 40, 1001)


class TestWatchdogPolicy:
    def test_check_passes_within_budget(self):
        Watchdog(100).check(pc=0, cycle=100, issued=100)

    def test_check_trips_on_cycles(self):
        with pytest.raises(ExecutionLimitExceeded, match="exceeded"):
            Watchdog(100).check(pc=0, cycle=101, issued=50)

    def test_check_trips_on_instructions(self):
        with pytest.raises(ExecutionLimitExceeded, match="no progress"):
            Watchdog(100).check(pc=0, cycle=50, issued=101)

    def test_fuel_for_scales_with_margin(self):
        assert Watchdog.fuel_for(1_000_000) \
            == Watchdog.HANG_MARGIN * 1_000_000

    def test_fuel_for_has_floor(self):
        assert Watchdog.fuel_for(10) == Watchdog.MIN_FUEL

    def test_default_budget(self):
        assert Watchdog().max_cycles == DEFAULT_MAX_CYCLES


class TestAllPathsAgree:
    """Satellite: fast path and interpreter trip identically."""

    def test_fast_and_interpreted_messages_match(self, dba_1lsu):
        dba_1lsu.load_program(SPIN)
        with pytest.raises(ExecutionLimitExceeded) as fast:
            dba_1lsu.run(entry="main", max_cycles=1000)
        with pytest.raises(ExecutionLimitExceeded) as interp:
            dba_1lsu.run_interpreted(entry="main", max_cycles=1000)
        assert str(fast.value) == str(interp.value)
        assert fast.value.cycle == interp.value.cycle
        assert fast.value.pc == interp.value.pc
        assert fast.value.max_cycles == interp.value.max_cycles == 1000

    def test_profiled_run_matches_too(self, dba_1lsu):
        from repro.cpu.profiler import CycleProfiler
        dba_1lsu.load_program(SPIN)
        with pytest.raises(ExecutionLimitExceeded) as interp:
            dba_1lsu.run_interpreted(entry="main", max_cycles=500)
        with pytest.raises(ExecutionLimitExceeded) as profiled:
            dba_1lsu.run_profiled(CycleProfiler(), entry="main",
                                  max_cycles=500)
        assert str(profiled.value) == str(interp.value)

    def test_watchdog_leaves_successful_runs_alone(self, dba_1lsu):
        dba_1lsu.load_program("main:\n  movi a2, 5\n  halt")
        result = dba_1lsu.run(entry="main", max_cycles=1000)
        assert result.reg("a2") == 5
