"""Unit tests for the DMA data prefetcher and interconnect."""

import pytest

from repro.cpu import (CoreConfig, DataPrefetcher, Interconnect, Processor)
from repro.cpu.errors import MemoryFault
from repro.cpu.memory import MAIN_BASE


@pytest.fixture()
def processor():
    prefetcher = DataPrefetcher(Interconnect(setup_latency=50,
                                             bytes_per_cycle=16))
    core = Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0),
                     extensions=[prefetcher])
    core.prefetcher = prefetcher
    return core


class TestInterconnect:
    def test_transfer_cycles(self):
        network = Interconnect(setup_latency=50, bytes_per_cycle=16)
        assert network.transfer_cycles(16) == 51
        assert network.transfer_cycles(1600) == 150

    def test_burst_amortizes_setup(self):
        network = Interconnect(setup_latency=50, bytes_per_cycle=16)
        small = network.effective_bandwidth(64)
        large = network.effective_bandwidth(4096)
        assert large > small * 5

    def test_stats(self):
        network = Interconnect()
        network.transfer_cycles(128)
        assert network.transfers == 1
        assert network.bytes_moved == 128
        network.reset_stats()
        assert network.transfers == 0


class TestEngine:
    def test_functional_move(self, processor):
        processor.write_words(MAIN_BASE, [11, 22, 33])
        processor.prefetcher.start(MAIN_BASE, 0x200, 12)
        assert processor.read_words(0x200, 3) == [11, 22, 33]

    def test_busy_until_accumulates(self, processor):
        engine = processor.prefetcher
        processor.write_words(MAIN_BASE, [0] * 8)
        engine.start(MAIN_BASE, 0x200, 16)
        first = engine.busy_until
        engine.start(MAIN_BASE, 0x220, 16)
        assert engine.busy_until == first + 51

    def test_zero_length_completes_immediately(self, processor):
        engine = processor.prefetcher
        engine.start(MAIN_BASE, 0x200, 0)
        assert engine._done_count() == 1

    def test_unaligned_length_rejected(self, processor):
        with pytest.raises(MemoryFault, match="whole words"):
            processor.prefetcher.start(MAIN_BASE, 0x200, 6)

    def test_reset(self, processor):
        engine = processor.prefetcher
        processor.write_words(MAIN_BASE, [0] * 4)
        engine.start(MAIN_BASE, 0x200, 16)
        engine.reset()
        assert engine.busy_until == 0
        assert engine.descriptors_run == 0


class TestRegisterInterface:
    def test_program_via_wur_and_poll(self, processor):
        processor.write_words(MAIN_BASE, [5, 6, 7, 8])
        source = """
        main:
          li a2, 0x80000000
          wur a2, DMA_SRC
          movi a3, 0x300
          wur a3, DMA_DST
          movi a4, 16
          wur a4, DMA_LEN
          movi a5, 1
          wur a5, DMA_CTRL
        poll:
          rur a6, DMA_STATUS
          bnez a6, poll
          l32i a7, a3, 0
          halt
        """
        processor.load_program(source)
        result = processor.run(entry="main")
        assert result.reg("a7") == 5
        assert processor.read_words(0x300, 4) == [5, 6, 7, 8]
        # the poll loop must have burned roughly the transfer latency
        assert result.cycles >= 50

    def test_done_count_register(self, processor):
        processor.write_words(MAIN_BASE, [0] * 8)
        source = """
        main:
          li a2, 0x80000000
          wur a2, DMA_SRC
          movi a3, 0x300
          wur a3, DMA_DST
          movi a4, 16
          wur a4, DMA_LEN
          movi a5, 1
          wur a5, DMA_CTRL
          wur a5, DMA_CTRL      ; second descriptor, same source
          movi a7, 2
        poll:
          rur a6, DMA_DONE
          blt a6, a7, poll
          halt
        """
        processor.load_program(source)
        result = processor.run(entry="main")
        # both descriptors completed; second waited for the first
        assert result.cycles >= 2 * 51
