"""Finer-grained timing-model tests: mul delay, bundles, routing."""

import pytest

from repro.configs.catalog import build_processor
from repro.cpu import CoreConfig, PipelineModel, Processor
from repro.cpu.memory import DMEM1_BASE


def run_cycles(processor, body, regs=None):
    processor.load_program("main:\n%s\n  halt" % body)
    return processor.run(entry="main", regs=regs or {}).cycles


class TestMultiplierTiming:
    def test_mul_use_bubble(self):
        processor = Processor(CoreConfig(
            "t", dmem0_kb=16, sim_headroom_kb=0,
            pipeline=PipelineModel(mul_use_delay=2)))
        dependent = run_cycles(processor,
                               "  mul a2, a3, a4\n  add a5, a2, a2")
        independent = run_cycles(processor,
                                 "  mul a2, a3, a4\n  add a5, a6, a6")
        assert dependent == independent + 2


class TestBundleTiming:
    @pytest.fixture()
    def eis(self):
        return build_processor("DBA_2LSU_EIS")

    def test_bundle_is_one_issue(self, eis):
        single = run_cycles(eis, "  sop_init")
        bundled = run_cycles(eis, "  { sop_init ; movi a2, 1 }")
        assert bundled == single  # two ops, one cycle

    def test_bundle_branch_reads_same_cycle_flag(self, eis):
        """The fused STORE_SOP writes the continue flag and the beqz in
        the same bundle consumes it (datapath forwarding)."""
        body = ("  sop_init\n"
                "  { store_sop_int a8 ; beqz a8, out }\n"
                "  movi a9, 111\n"
                "out:\n  nop")
        eis.load_program("main:\n%s\n  halt" % body)
        result = eis.run(entry="main", regs={"a9": 0})
        # empty datapath -> flag 0 -> branch taken -> a9 never written
        assert result.reg("a9") == 0

    def test_bundle_memory_cost_propagates(self, eis):
        # an EIS load inside a bundle pays local-memory cost (0 waits)
        eis.write_words(0x0, [1, 2, 3, 4])
        ext = eis.extension_states["db_eis"]
        ext.setdp.op_init(eis)
        ext.setdp.ptr_a.value = 0
        ext.setdp.end_a.value = 16
        cycles = run_cycles(eis, "  { ld_a }")
        assert cycles == 2  # bundle + halt


class TestScalarRoutingToDmem1:
    def test_scalar_access_routes_to_second_lsu(self):
        processor = build_processor("DBA_2LSU_EIS")
        processor.write_words(DMEM1_BASE, [77])
        processor.load_program(
            "main:\n  l32i a3, a2, 0\n  halt")
        result = processor.run(entry="main", regs={"a2": DMEM1_BASE})
        assert result.reg("a3") == 77
        assert result.stats["lsu_loads"] == [0, 1]

    def test_single_lsu_serves_everything(self):
        processor = build_processor("DBA_1LSU_EIS")
        processor.write_words(0x40, [5])
        processor.load_program("main:\n  l32i a3, a2, 0\n  halt")
        result = processor.run(entry="main", regs={"a2": 0x40})
        assert result.stats["lsu_loads"] == [1]


class TestStFlushTiming:
    def test_flush_is_multicycle(self):
        processor = build_processor("DBA_2LSU_EIS")
        ext = processor.extension_states["db_eis"]
        ext.setdp.op_init(processor)
        nop_cycles = run_cycles(processor, "  nop")
        flush_cycles = run_cycles(processor, "  st_flush")
        assert flush_cycles == nop_cycles + 4  # extra_cycles=4
