#!/usr/bin/env python3
"""End-to-end queries on the database processor.

Runs a small analytics workload over a columnar table whose WHERE
clauses resolve to RID-list set algebra (intersection/union/difference
instructions) and whose ORDER BY runs on the merge-sort instructions —
the complete usage scenario the paper's Section 2.3 motivates — and
compares per-query latency and energy between the DBA_2LSU_EIS
processor and the scalar DBA_1LSU core.
"""

import random

from repro import build_processor, synthesize_config
from repro.db import Eq, In, Query, QueryEngine, QueryExecutor, Range, Table


def build_orders_table(rows=3000, seed=17):
    rng = random.Random(seed)
    return Table("orders", {
        "status": [rng.randrange(4) for _ in range(rows)],
        "region": [rng.randrange(8) for _ in range(rows)],
        "priority": [rng.randrange(10) for _ in range(rows)],
        "amount": [rng.randrange(200_000) for _ in range(rows)],
    })


QUERIES = [
    ("open high-priority EMEA",
     Eq("status", 1) & Eq("region", 2) & Range("priority", 7, 9)),
    ("open or blocked anywhere",
     Eq("status", 1) | Eq("status", 3)),
    ("high-priority outside EMEA/APAC",
     Range("priority", 8, 9) - In("region", [2, 5])),
]


def main():
    table = build_orders_table()
    for column in ("status", "region", "priority"):
        table.create_index(column)

    engines = []
    for name in ("DBA_1LSU", "DBA_2LSU_EIS"):
        processor = build_processor(name)
        report = synthesize_config(name)
        engines.append((name, QueryExecutor(processor), report))

    print("%-34s %14s %14s" % ("query", "DBA_1LSU", "DBA_2LSU_EIS"))
    reference = {}
    for label, predicate in QUERIES:
        cells = []
        for name, executor, report in engines:
            rids, stats = executor.where(table, predicate)
            if label in reference:
                assert rids == reference[label], "engines disagree!"
            reference[label] = rids
            micros = stats.latency_us(report.fmax_mhz)
            cells.append("%8.1f us" % micros)
        print("%-34s %14s %14s   (%d rows)"
              % (label, cells[0], cells[1], len(reference[label])))

    # a full SELECT with ORDER BY ... LIMIT
    print()
    name, executor, report = engines[1]
    rows, stats = executor.select(
        table,
        predicate=Eq("status", 1) & Range("priority", 5, 9),
        order_by="amount", descending=True, limit=5,
        columns=["amount", "priority", "region"])
    print("top-5 open orders by amount (on %s):" % name)
    for row in rows:
        print("  amount=%-7d priority=%d region=%d"
              % (row["amount"], row["priority"], row["region"]))
    print("query used %d index scans, %d set ops, %d sort; "
          "%.1f us, %.3f uJ"
          % (stats.index_scans, stats.set_operations,
             stats.sort_operations, stats.latency_us(report.fmax_mhz),
             stats.energy_uj(report.power_mw, report.fmax_mhz)))

    # batched serving through the QueryEngine: the calibrated cost
    # model predicts the exact ISS cycle counts without simulating,
    # and identical subtrees within the batch are evaluated once
    print()
    engine = QueryEngine(config="DBA_2LSU_EIS")
    hot = Eq("status", 1) & Range("priority", 5, 9)
    batch = [Query(table, hot, order_by="amount",
                   descending=True, limit=5),
             Query(table, hot, limit=20),            # CSE reuse
             Query(table, Eq("region", 2), order_by="amount",
                   limit=10)]
    results = engine.execute_batch(batch)
    snapshot = engine.metrics_snapshot()
    print("engine served %d queries (%d rows):"
          % (len(results), sum(len(r.rows) for r in results)))
    for query, result in zip(batch, results):
        print("  %-42r %5d cycles, %3d rows"
              % (query.predicate, result.stats.cycles,
                 len(result.rows)))
    print("cycles by source: costmodel=%d iss=%d; "
          "cse hits=%d (saved %d cycles)"
          % (snapshot["db.engine.cycles_costmodel"],
             snapshot["db.engine.cycles_iss"],
             snapshot["db.engine.cse.hits"],
             snapshot["db.engine.cycles_saved"]))


if __name__ == "__main__":
    main()
