#!/usr/bin/env python3
"""Index ANDing: conjunctive WHERE clauses via RID-list intersection.

The paper motivates its set instructions with RID-set operations
"obtained from secondary indices when complex selection predicates
within the WHERE clause are specified" (Section 2.3, citing Raman et
al.'s lazy RID-list intersection).  This example evaluates

    SELECT ... FROM orders
    WHERE status = 'open' AND region = 'EMEA' AND priority > 3

as three secondary-index scans producing RID lists, ANDed pairwise on
the database processor — intersecting the two smallest lists first,
the standard index-ANDing order.
"""

from repro import build_processor, run_set_operation, synthesize_config
from repro.core import run_scalar_set_operation
from repro.workloads import generate_predicate_rid_lists

TABLE_ROWS = 40_000
PREDICATE_SELECTIVITIES = {
    "status = 'open'": 0.22,
    "region = 'EMEA'": 0.35,
    "priority > 3": 0.15,
}


def and_rid_lists(processor, rid_lists, runner):
    """Pairwise intersection, smallest lists first; returns (rids, cycles)."""
    queue = sorted(rid_lists, key=len)
    total_cycles = 0
    current = queue.pop(0)
    while queue:
        nxt = queue.pop(0)
        current, stats = runner(processor, "intersection", current, nxt)
        total_cycles += stats.cycles
        if not current:
            break
    return current, total_cycles


def main():
    lists = generate_predicate_rid_lists(
        TABLE_ROWS, PREDICATE_SELECTIVITIES.values(), seed=7)
    for (predicate, selectivity), rids in zip(
            PREDICATE_SELECTIVITIES.items(), lists):
        print("index scan %-18s -> %6d RIDs (%.0f%%)"
              % (predicate, len(rids), selectivity * 100))

    expected = sorted(set(lists[0]) & set(lists[1]) & set(lists[2]))

    eis = build_processor("DBA_2LSU_EIS", partial_load=True,
                          sim_headroom_kb=256)
    eis_synth = synthesize_config("DBA_2LSU_EIS")
    result, eis_cycles = and_rid_lists(eis, lists, run_set_operation)
    assert result == expected

    base = build_processor("108Mini")
    base_synth = synthesize_config("108Mini")
    result_scalar, base_cycles = and_rid_lists(base, lists,
                                               run_scalar_set_operation)
    assert result_scalar == expected

    print()
    print("qualifying rows: %d of %d" % (len(result), TABLE_ROWS))
    for name, synth, cycles in (("108Mini", base_synth, base_cycles),
                                ("DBA_2LSU_EIS", eis_synth, eis_cycles)):
        micros = cycles / synth.fmax_mhz
        energy_uj = synth.power_mw * micros / 1000.0
        print("  %-14s %9d cycles  %8.1f us/query  %8.3f uJ/query"
              % (name, cycles, micros, energy_uj))
    print("  index-ANDing speedup: %.1fx"
          % ((base_cycles / base_synth.fmax_mhz)
             / (eis_cycles / eis_synth.fmax_mhz)))


if __name__ == "__main__":
    main()
