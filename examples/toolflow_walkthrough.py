#!/usr/bin/env python3
"""Walking the paper's tool flow (Figure 4) for the intersection kernel.

1. Profile the scalar application on the base DBA core — the profiler
   "unveils hotspots in the application's execution".
2. Inspect the extension candidates the hotspot analysis proposes.
3. Attach the database instruction-set extension, adapt the
   application to the new instructions, and iterate.
4. Verify each iteration against pre-specified results and synthesize
   the final processor for area/power/timing sign-off.
"""

from repro import build_processor, synthesize_config
from repro.core.kernels import run_set_operation
from repro.core.scalar_kernels import (intersection_scalar_kernel,
                                       run_scalar_set_operation,
                                       scalar_set_layout)
from repro.cpu import CycleProfiler
from repro.toolflow import DevelopmentFlow, extension_candidates
from repro.workloads import generate_set_pair


def main():
    set_a, set_b = generate_set_pair(2000, selectivity=0.5, seed=5)
    expected = sorted(set(set_a) & set(set_b))

    # ---- step 1: cycle-accurate profiling of the scalar application
    base = build_processor("DBA_1LSU")
    base_a, base_b, base_c = scalar_set_layout(len(set_a), len(set_b))
    base.write_words(base_a, set_a)
    base.write_words(base_b, set_b)
    program = base.load_program(intersection_scalar_kernel())
    profiler = CycleProfiler()
    base.run_profiled(profiler, entry="main", regs={
        "a2": base_a, "a3": base_a + len(set_a) * 4,
        "a4": base_b, "a5": base_b + len(set_b) * 4, "a6": base_c})
    print("== profiling the scalar intersection on DBA_1LSU ==")
    print(profiler.report(program, top=5))
    print()
    print("extension candidates (hot regions by cycles/visit):")
    for candidate in extension_candidates(profiler, program):
        print("  %-10s %5.1f%% of cycles, %.1f cycles/visit"
              % (candidate["region"], candidate["share"] * 100,
                 candidate["cycles_per_visit"]))
    print()

    # ---- steps 2-4: iterate instruction-set development
    def scalar_app(processor):
        return run_scalar_set_operation(processor, "intersection",
                                        set_a, set_b)

    def eis_app(processor):
        return run_set_operation(processor, "intersection", set_a,
                                 set_b)

    flow = DevelopmentFlow(scalar_app, expected)
    flow.iterate("scalar baseline", build_processor("DBA_1LSU"))
    flow.application = eis_app
    flow.iterate("EIS, 1 LSU, no partial load",
                 build_processor("DBA_1LSU_EIS", partial_load=False))
    flow.iterate("EIS, 1 LSU, partial load",
                 build_processor("DBA_1LSU_EIS", partial_load=True))
    flow.iterate("EIS, 2 LSUs, partial load",
                 build_processor("DBA_2LSU_EIS", partial_load=True))
    print("== instruction-set development iterations ==")
    print(flow.summary())
    print("improvement exhausted: %s" % flow.improvement_exhausted())
    print()

    # ---- final sign-off: synthesis results of the chosen processor
    report = synthesize_config("DBA_2LSU_EIS")
    print("== synthesis sign-off (DBA_2LSU_EIS, 65nm) ==")
    print("logic %.3f mm2 + memory %.3f mm2, fmax %.0f MHz, "
          "%.1f mW" % (report.logic_mm2, report.memory_mm2,
                       report.fmax_mhz, report.power_mw))


if __name__ == "__main__":
    main()
