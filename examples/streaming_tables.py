#!/usr/bin/env python3
"""Streaming beyond the local store with the data prefetcher.

The local data memories hold at most 5000 elements per set (Section
5.2).  For larger RID lists the data prefetcher bursts chunks from
off-chip memory into the dual-port local memories *while the SOP loop
runs* — this example intersects sets up to 64K elements and shows that
throughput stays near the local-only rate, the paper's system-level
validation claim.
"""

from repro import build_processor, synthesize_config
from repro.core import run_set_operation, run_streaming_set_operation
from repro.workloads import generate_set_pair


def main():
    fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
    processor = build_processor("DBA_2LSU_EIS", partial_load=True,
                                prefetcher=True, sim_headroom_kb=1024)

    set_a, set_b = generate_set_pair(5000, selectivity=0.5, seed=13)
    _result, stats = run_set_operation(processor, "intersection",
                                       set_a, set_b)
    local = stats.throughput_meps(10_000, fmax)
    print("local-only reference (2x5000): %.0f Melem/s" % local)
    print()
    print("  %-10s %18s %18s" % ("elements", "overlapped Melem/s",
                                 "blocking Melem/s"))
    for size in (8_000, 16_000, 32_000, 64_000):
        big_a, big_b = generate_set_pair(size, selectivity=0.5, seed=13)
        expected = sorted(set(big_a) & set(big_b))
        result, overlapped = run_streaming_set_operation(
            processor, "intersection", big_a, big_b, overlap=True)
        assert result == expected
        _result, blocking = run_streaming_set_operation(
            processor, "intersection", big_a, big_b, overlap=False)
        print("  %-10d %18.0f %18.0f"
              % (size, overlapped.throughput_meps(2 * size, fmax),
                 blocking.throughput_meps(2 * size, fmax)))
    print()
    print("overlapped DMA keeps throughput near the local-only rate;")
    print("blocking transfers cost about 40% - the concurrency the")
    print("paper's prefetcher provides (Section 3.2).")


if __name__ == "__main__":
    main()
