#!/usr/bin/env python3
"""Quickstart: intersect two RID sets on the database processor.

Builds the paper's flagship configuration (DBA_2LSU_EIS with partial
loading), runs a sorted-set intersection with the new instructions,
and compares throughput and energy against the scalar baseline core —
a miniature of the paper's Tables 2 and 3.
"""

from repro import build_processor, run_set_operation, synthesize_config
from repro.core import run_scalar_set_operation
from repro.workloads import generate_set_pair


def main():
    set_a, set_b = generate_set_pair(5000, selectivity=0.5, seed=2024)
    expected = sorted(set(set_a) & set(set_b))

    # --- the database processor with the instruction-set extension
    eis = build_processor("DBA_2LSU_EIS", partial_load=True)
    eis_synth = synthesize_config("DBA_2LSU_EIS")
    result, stats = run_set_operation(eis, "intersection", set_a, set_b)
    assert result == expected
    eis_meps = stats.throughput_meps(len(set_a) + len(set_b),
                                     eis_synth.fmax_mhz)

    # --- the scalar baseline core (no extension)
    base = build_processor("DBA_1LSU")
    base_synth = synthesize_config("DBA_1LSU")
    result_scalar, stats_scalar = run_scalar_set_operation(
        base, "intersection", set_a, set_b)
    assert result_scalar == expected
    base_meps = stats_scalar.throughput_meps(len(set_a) + len(set_b),
                                             base_synth.fmax_mhz)

    print("sorted-set intersection, 2x5000 RIDs at 50% selectivity")
    print("  result size: %d RIDs" % len(result))
    print()
    print("  %-22s %10s %12s %12s" % ("processor", "f [MHz]",
                                      "Melem/s", "nJ/element"))
    for name, synth, meps in (
            ("DBA_1LSU (scalar)", base_synth, base_meps),
            ("DBA_2LSU_EIS", eis_synth, eis_meps)):
        energy = synth.power_mw / meps
        print("  %-22s %10.0f %12.1f %12.3f"
              % (name, synth.fmax_mhz, meps, energy))
    print()
    print("  EIS speedup: %.1fx at %.1fx lower energy per element"
          % (eis_meps / base_meps,
             (base_synth.power_mw / base_meps)
             / (eis_synth.power_mw / eis_meps)))


if __name__ == "__main__":
    main()
