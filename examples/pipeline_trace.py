#!/usr/bin/env python3
"""Pipeline trace of the EIS core loop (the paper's Figures 10/11).

Runs the sorted-set intersection kernel with the pipeline tracer
attached and shows the steady-state interleaving of STORE_SOP and
LD_LDP_SHUFFLE bundles, then checks the headline scheduling claim of
Section 4: with the loop unrolled 32x, one iteration costs ~2.03
cycles on two LSUs.
"""

from repro import build_processor
from repro.core.kernels import run_set_operation
from repro.cpu import PipelineTracer
from repro.workloads import generate_set_pair


def main():
    processor = build_processor("DBA_2LSU_EIS", partial_load=True)
    set_a, set_b = generate_set_pair(2000, selectivity=0.5, seed=3)

    tracer = PipelineTracer(limit=4000)
    # run_set_operation stages data and loads the kernel; re-run the
    # same workload with the tracer attached
    result, _stats = run_set_operation(processor, "intersection",
                                       set_a, set_b)
    from repro.core.kernels import set_operation_layout
    base_a, base_b, base_c = set_operation_layout(processor, len(set_a),
                                                  len(set_b))
    stats = processor.run(entry="main", trace=tracer, regs={
        "a2": base_a, "a3": base_a + len(set_a) * 4,
        "a4": base_b, "a5": base_b + len(set_b) * 4, "a6": base_c})

    print("steady-state pipeline snippet (cycle, pc, issue):")
    print(tracer.render(start=40, count=12))
    print()
    per_iteration = tracer.loop_cycles_per_iteration(
        "{store_sop_int;beqz}")
    print("measured cycles per core-loop iteration: %.2f "
          "(paper Section 4: 2.03 with 32x unrolling)" % per_iteration)
    print("total: %d cycles for %d + %d input elements"
          % (stats.cycles, len(set_a), len(set_b)))


if __name__ == "__main__":
    main()
