#!/usr/bin/env python3
"""ORDER BY: sorting a key column with the merge-sort instructions.

Sorts a 6500-key column (the paper's Table 2 sort workload) on the
database processor and on the scalar baseline, across several input
orderings — verifying the paper's observation that "the order of the
values being sorted has no impact on the throughput of our chosen
merge-sort implementation" (Section 5.2).
"""

from repro import build_processor, run_merge_sort, synthesize_config
from repro.core import run_scalar_merge_sort
from repro.workloads import (few_distinct_values, nearly_sorted_values,
                             presorted_values, random_values,
                             reverse_sorted_values)

N = 6500

ORDERINGS = (
    ("random", random_values),
    ("presorted", presorted_values),
    ("reverse-sorted", reverse_sorted_values),
    ("nearly sorted", nearly_sorted_values),
    ("few distinct keys", few_distinct_values),
)


def main():
    eis = build_processor("DBA_1LSU_EIS")
    eis_synth = synthesize_config("DBA_1LSU_EIS")
    base = build_processor("DBA_1LSU")
    base_synth = synthesize_config("DBA_1LSU")

    print("merge-sort of %d keys (hwsort on DBA_1LSU_EIS vs scalar "
          "on DBA_1LSU)" % N)
    print("  %-20s %14s %14s" % ("input ordering", "hwsort Melem/s",
                                 "scalar Melem/s"))
    for label, generator in ORDERINGS:
        values = generator(N, seed=11)
        sorted_hw, stats_hw = run_merge_sort(eis, values)
        assert sorted_hw == sorted(values)
        sorted_sw, stats_sw = run_scalar_merge_sort(base, values)
        assert sorted_sw == sorted(values)
        print("  %-20s %14.1f %14.1f"
              % (label,
                 stats_hw.throughput_meps(N, eis_synth.fmax_mhz),
                 stats_sw.throughput_meps(N, base_synth.fmax_mhz)))
    print()
    print("hwsort throughput is ordering-invariant (no data-dependent")
    print("shortcuts), matching the paper's Section 5.2 note.")


if __name__ == "__main__":
    main()
