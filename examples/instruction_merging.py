#!/usr/bin/env python3
"""Instruction merging (paper Section 2.2), measured.

The paper's two canonical examples of merging existing instructions
into application-specific ones:

* CRC computation — "requires shift, comparison, and XOR instructions,
  which can all be combined into a single instruction",
* bit reversal — "cheap in hardware whereas it requires dozens of
  instructions in software".

This example builds both with the TIE framework, runs software vs
hardware versions on the same core, and prices the new instructions in
silicon.
"""

import random

from repro.core.bitops import (bitrev_software_kernel,
                               build_bitops_extension, crc32_reference,
                               run_crc32)
from repro.cpu import CoreConfig, Processor
from repro.synth import TSMC_65NM_LP


def main():
    extension = build_bitops_extension()
    processor = Processor(CoreConfig("bitops-demo", dmem0_kb=16),
                          extensions=[extension])
    rng = random.Random(42)
    words = [rng.randrange(1 << 32) for _ in range(256)]

    crc_hw, stats_hw = run_crc32(processor, words, hardware=True)
    crc_sw, stats_sw = run_crc32(processor, words, hardware=False)
    assert crc_hw == crc_sw == crc32_reference(words)
    print("CRC-32 over %d words (result 0x%08x):" % (len(words),
                                                     crc_hw))
    print("  software bit loop : %7d cycles (%.1f cycles/word)"
          % (stats_sw.cycles, stats_sw.cycles / len(words)))
    print("  crc_word merged op: %7d cycles (%.1f cycles/word)"
          % (stats_hw.cycles, stats_hw.cycles / len(words)))
    print("  speedup: %.1fx" % (stats_sw.cycles / stats_hw.cycles))
    print()

    word = 0xDEADBEEF
    processor.load_program("main:\n  bitrev a3, a2\n  halt")
    hw = processor.run(entry="main", regs={"a2": word})
    processor.load_program(bitrev_software_kernel())
    sw = processor.run(entry="main", regs={"a2": word})
    print("bit reversal of 0x%08x -> 0x%08x:" % (word, hw.reg("a3")))
    print("  software swap network: %d instructions, %d cycles"
          % (sw.instructions, sw.cycles))
    print("  bitrev instruction   : 1 instruction, %d cycle(s)"
          % (hw.cycles - 1))
    print()

    netlist = extension.netlist()
    print("silicon price of the whole demo extension:")
    for group, gate_equivalents in sorted(netlist.groups.items()):
        print("  %-16s %6d GE" % (group, gate_equivalents))
    print("  total: %d GE = %.4f mm2 at 65nm — and the merged "
          "instructions add" % (netlist.total_ge(),
                                TSMC_65NM_LP.ge_to_mm2(
                                    netlist.total_ge())))
    print("  %.0f FO4 to the critical path (bitrev: none, it is pure "
          "wiring)." % netlist.longest_path_fo4())


if __name__ == "__main__":
    main()
