#!/usr/bin/env python3
"""Compressed RID lists: a candidate primitive beyond the paper's four.

The paper lists compression among the database primitives worth
specialized circuits (Section 1).  This example builds the D8
delta-decompression instruction with the same TIE framework, decodes a
real index-scan RID list at ~1 value/cycle, and shows the system-level
payoff: the DMA prefetcher moves 3-4x fewer bytes per list, which is
exactly what helps when transfers bound throughput (the blocking case
of the streaming experiment).
"""

from repro.core.compression import (build_compression_extension,
                                    compress_d8, compression_ratio,
                                    run_decompress)
from repro.cpu import CoreConfig, Interconnect, Processor
from repro.synth import TSMC_65NM_LP
from repro.workloads import generate_rid_list


def main():
    extension = build_compression_extension()
    processor = Processor(CoreConfig("d8", dmem0_kb=64),
                          extensions=[extension])

    rids = generate_rid_list(5000, table_rows=200_000, seed=9)
    words = compress_d8(rids)
    ratio = compression_ratio(rids)
    print("index-scan RID list: %d values, %d compressed words "
          "(%.2fx)" % (len(rids), len(words), ratio))

    output, stats = run_decompress(processor, rids)
    assert output == rids
    print("on-core decode: %d cycles = %.2f cycles/value "
          "(4-lane prefix-sum network)"
          % (stats.cycles, stats.cycles / len(rids)))

    network = Interconnect()
    raw = network.transfer_cycles(4 * len(rids))
    compressed = network.transfer_cycles(4 * len(words))
    print("DMA burst for this list: raw %d cycles vs compressed %d "
          "cycles (%.1fx less bus time)"
          % (raw, compressed, raw / compressed))

    netlist = extension.netlist()
    print("silicon price: %d GE = %.4f mm2 at 65nm"
          % (netlist.total_ge(),
             TSMC_65NM_LP.ge_to_mm2(netlist.total_ge())))


if __name__ == "__main__":
    main()
