#!/usr/bin/env python3
"""Build your own instruction: the paper's Figure 5, end to end.

Recreates the TIE example verbatim — an 8-bit ``state8`` state, an
8-entry 32-bit register file ``reg32``, and the single-cycle
``add3_shift`` operation — then runs the corresponding "C code"
both through the intrinsics layer and as assembled machine code, and
reports the hardware cost the synthesis model assigns to it.
"""

from repro.cpu import CoreConfig, Processor
from repro.synth import TSMC_65NM_LP
from repro.tie import (Intrinsics, Operand, Operation, RegFile, State,
                       StateUse, TieExtension)


def build_figure5_extension():
    """The three declarations from the paper's Figure 5 a)-c)."""
    # a) state definition: state state8 8 8'h0 add_read_write
    state8 = State("state8", width_bits=8, initial=0)
    # b) register definition: regfile reg32 32 8 reg
    reg32 = RegFile("reg32", width_bits=32, size=8, prefix="v")

    # c) instruction definition
    def semantics(extension, core, in0, in1, in2):
        shift = extension.state("state8").value
        return ((in0 + in1 + in2) >> shift) & 0xFFFFFFFF

    add3_shift = Operation(
        "add3_shift",
        operands=[Operand("res", "out", "ar"),
                  Operand("in0", "in", reg32),
                  Operand("in1", "in", reg32),
                  Operand("in2", "in", reg32)],
        states=[StateUse(state8, "in")],
        semantics=semantics,
        circuit={"adder32": 2, "shift_barrel32": 1},
        path=("adder32", "adder32", "shift_barrel32"),
        description="res = (in0 + in1 + in2) >> state8")
    return TieExtension("figure5", states=[state8], regfiles=[reg32],
                        operations=[add3_shift]), reg32, state8


def main():
    extension, reg32, state8 = build_figure5_extension()
    processor = Processor(CoreConfig("demo", dmem0_kb=16),
                          extensions=[extension])

    # d) the C code:  WUR_state8(4); value = add3_shift(v0, v1, v2);
    intrinsics = Intrinsics(processor)
    state8.write(4)
    value = intrinsics.add3_shift(100, 200, 340)
    print("intrinsic call: add3_shift(100, 200, 340) >> 4 = %d" % value)

    # the same program as assembled machine code
    reg32.write(0, 100)
    reg32.write(1, 200)
    reg32.write(2, 340)
    processor.load_program("""
    main:
      movi a2, 4
      wur a2, state8          ; WUR_state8(4)
      add3_shift a3, v0, v1, v2
      halt
    """)
    result = processor.run(entry="main")
    print("assembled run:  a3 = %d in %d cycles"
          % (result.reg("a3"), result.cycles))

    # what the new instruction costs in silicon
    netlist = extension.netlist()
    area_mm2 = TSMC_65NM_LP.ge_to_mm2(netlist.total_ge())
    fmax = TSMC_65NM_LP.path_to_mhz(netlist.longest_path_fo4())
    print("hardware cost:  %d GE (%.4f mm2 at 65nm), datapath-limited "
          "fmax %.0f MHz" % (netlist.total_ge(), area_mm2, fmax))
    print("area by group:  %s" % netlist.groups)


if __name__ == "__main__":
    main()
