; sum.s -- sum a3 32-bit words starting at byte address a2.
;
; Register protocol follows the builtin kernels: a2..a7 carry
; arguments, a8+ are scratch, and the result is returned in a2.
; Lint-clean by construction:
;
;     python -m repro.cli lint examples/asm/sum.s

main:
  movi a4, 0            ; running total
loop:
  beqz a3, done
  l32i a5, a2, 0
  add a4, a4, a5
  addi a2, a2, 4
  addi a3, a3, -1
  j loop
done:
  mv a2, a4
  halt
