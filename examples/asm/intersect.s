; intersect.s -- minimal EIS sorted-set intersection (unroll x2).
;
; A cut-down version of the Figure 11 kernel emitted by
; repro.core.kernels.set_operation_kernel, kept small enough to read
; in one sitting.  Register protocol: a2/a3 = set A begin/end byte
; addresses, a4/a5 = set B begin/end, a6 = result base.  On halt a2
; holds the number of result elements.
;
; Requires an EIS configuration (the default for file-mode lint):
;
;     python -m repro.cli lint examples/asm/intersect.s

main:
  wur a2, sop_ptr_a
  wur a3, sop_end_a
  wur a4, sop_ptr_b
  wur a5, sop_end_b
  wur a6, sop_ptr_c
  sop_init
  ld_a
  ld_b
  ldp_a
  ldp_b
loop:
  { store_sop_int a8 ; beqz a8, drain }
  { ld_ldp_shuffle }
  { store_sop_int a8 ; beqz a8, drain }
  { ld_ldp_shuffle }
  j loop
drain:
  st_flush
  rur a2, sop_count
  halt
