"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Benchmarks execute the
full-size paper workloads once (``pedantic`` with a single round — the
simulator is deterministic, so repetition only re-measures Python), and
attach the *model-level* results (throughput, areas, powers) as
``extra_info`` so `pytest benchmarks/ --benchmark-only` prints the
regenerated numbers next to the wall-clock costs.

When ``BENCH_REPORT_DIR`` is set, :func:`run_once` additionally writes
one ``BENCH_<benchmark>.json`` run report per simulated run it can see
in the benchmarked callable's return value — the machine-readable perf
trajectory consumed by CI and cross-PR comparisons (schema:
:mod:`repro.telemetry.report`).
"""

import os
import re

import pytest

from repro.configs.catalog import build_processor
from repro.cpu.processor import RunResult
from repro.telemetry.report import RunReport
from repro.synth.synthesis import synthesize_config
from repro.workloads.sets import generate_set_pair
from repro.workloads.sorting import random_values


@pytest.fixture(scope="session")
def paper_sets():
    """The paper's Table 2 set workload: 2x5000 at 50% selectivity."""
    return generate_set_pair(5000, selectivity=0.5, seed=42)


@pytest.fixture(scope="session")
def paper_sort_values():
    """The paper's sort workload: 6500 random 32-bit values."""
    return random_values(6500, seed=42)


@pytest.fixture(scope="session")
def fmax():
    """Synthesized core frequencies per configuration (MHz)."""
    return {name: synthesize_config(name).fmax_mhz
            for name in ("108Mini", "DBA_1LSU", "DBA_2LSU",
                         "DBA_1LSU_EIS", "DBA_2LSU_EIS")}


@pytest.fixture(scope="session")
def processors():
    """Session-shared processor instances for all Table 2 rows."""
    built = {
        ("108Mini", None): build_processor("108Mini"),
        ("DBA_1LSU", None): build_processor("DBA_1LSU"),
        ("DBA_1LSU_EIS", False): build_processor("DBA_1LSU_EIS",
                                                 partial_load=False),
        ("DBA_2LSU_EIS", False): build_processor("DBA_2LSU_EIS",
                                                 partial_load=False),
        ("DBA_1LSU_EIS", True): build_processor("DBA_1LSU_EIS",
                                                partial_load=True),
        ("DBA_2LSU_EIS", True): build_processor("DBA_2LSU_EIS",
                                                partial_load=True),
    }
    yield built
    _lint_executed_kernels(built.values())


def _lint_executed_kernels(procs):
    """Warn-only static verification of every kernel the session ran.

    Re-lints the programs accumulated in each processor's kernel cache
    at teardown so any warning-severity findings surface in the pytest
    warnings summary without failing the benchmarks.
    """
    import warnings

    from repro.analysis import LintWarning, lint_program

    for proc in procs:
        for key, (program, _config, _exts) in getattr(
                proc, "_kernel_cache", {}).items():
            report = lint_program(program, proc)
            for diagnostic in report.at_least("warning"):
                warnings.warn("%s: %s" % (key, diagnostic.format()),
                              LintWarning)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic harness with a single measured round."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                iterations=1, warmup_rounds=0)
    directory = os.environ.get("BENCH_REPORT_DIR")
    if directory:
        run = _find_run_result(result)
        if run is not None:
            _write_bench_report(directory, benchmark.name, run)
    return result


def _find_run_result(value):
    """Dig the RunResult out of a benchmarked callable's return value."""
    if isinstance(value, RunResult):
        return value
    if isinstance(value, (tuple, list)):
        for item in value:
            if isinstance(item, RunResult):
                return item
    return None


def _write_bench_report(directory, bench_name, run):
    os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", bench_name).strip("_")
    path = os.path.join(directory, "BENCH_%s.json" % slug)
    RunReport.from_run(run, workload=bench_name).save(path)
    return path
