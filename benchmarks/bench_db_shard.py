"""Meta-benchmark: sharded scale-out serving vs the single engine.

Not a paper experiment — this tracks the reproduction's own sharded
serving path: :class:`repro.db.shard.ShardedEngine` against the single
:class:`repro.db.engine.QueryEngine` on the scale-out WHERE workload.
The sharded path must agree RID-for-RID with the single engine (the
benchmark asserts it); what it buys is *modeled* speedup — serial
cycles over summed per-query makespans (max shard WHERE + interconnect
gather + EIS union merge).  When ``BENCH_REPORT_DIR`` is set the
summary is written to ``BENCH_db_shard.json`` (consumed by the CI
``scale-out`` gate and ``repro bench record``; see docs/SHARDING.md).
"""

import json
import os

from repro.db.engine import QueryEngine
from repro.db.shard import ShardedEngine
from repro.experiments.scale_out import _where_queries, build_demo_table

#: The CI gate: modeled 4-shard speedup on the uniform workload.
MIN_MODELED_SPEEDUP = 2.0

ROWS = 8192
QUERIES = 24
SHARDS = 4


def _write_summary(payload):
    directory = os.environ.get("BENCH_REPORT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_db_shard.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def test_sharded_batch_serving(benchmark):
    """4-shard scatter/gather vs single-engine serving, cost model."""
    table = build_demo_table(rows=ROWS, seed=42)
    batch = _where_queries(table, QUERIES, seed=49)

    single = QueryEngine()
    single_results = single.execute_batch(batch)
    serial_cycles = sum(r.stats.cycles for r in single_results)

    engine = ShardedEngine(shards=SHARDS)
    engine.shards_for(table)  # partition outside the timed region

    def serve():
        return engine.execute_batch(batch)

    results = benchmark.pedantic(serve, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert [r.rids for r in results] \
        == [r.rids for r in single_results], \
        "sharded RIDs diverged from the single engine"

    makespan_cycles = sum(r.makespan_cycles for r in results)
    modeled_speedup = serial_cycles / makespan_cycles \
        if makespan_cycles else 0.0
    snapshot = engine.metrics_snapshot()
    shard_cycles = [snapshot["db.shard.%d.cycles" % index]
                    for index in range(SHARDS)]
    total = sum(shard_cycles)
    summary = {
        "schema": "repro.bench-db-shard/v1",
        "rows": ROWS,
        "queries": QUERIES,
        "shards": SHARDS,
        "rid_parity": True,
        "serial_cycles": serial_cycles,
        "makespan_cycles": makespan_cycles,
        "modeled_speedup": modeled_speedup,
        "skew": (max(shard_cycles) * SHARDS / total) if total else 1.0,
        "skipped": snapshot["db.shard.skipped"],
        "gather_merge_cycles":
            snapshot["db.shard.gather.merge_cycles"],
        "gather_transfer_cycles":
            snapshot["db.shard.gather.transfer_cycles"],
        "gather_bytes": snapshot["db.shard.gather.bytes_moved"],
    }
    benchmark.extra_info["modeled_speedup"] = round(modeled_speedup, 2)
    benchmark.extra_info["makespan_cycles"] = makespan_cycles
    benchmark.extra_info["skew"] = round(summary["skew"], 2)
    path = _write_summary(summary)
    if path:
        benchmark.extra_info["report"] = path

    assert modeled_speedup >= MIN_MODELED_SPEEDUP, (
        "modeled %d-shard speedup %.2fx below the %.1fx gate"
        % (SHARDS, modeled_speedup, MIN_MODELED_SPEEDUP))
