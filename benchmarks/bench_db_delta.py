"""Meta-benchmark: Z-set delta maintenance vs rebuild-from-scratch.

Not a paper experiment — this tracks the reproduction's own columnar
storage layer (ISSUE 10): a :class:`repro.db.columnar.ColumnarTable`
absorbing the shared Zipfian delta stream through incremental
``apply_delta`` (searchsorted index merges, tombstone deletes) against
the pre-columnar behaviour of rebuilding the table and every secondary
index from scratch after each batch.  Both paths must end in the same
state (the benchmark asserts RID-for-RID and value-for-value parity);
what incrementality buys is wall-clock, gated at
:data:`MIN_DELTA_SPEEDUP`.  A second gate covers the one-off index
*build*: the argsort build of a columnar index against the
row-oriented ``SecondaryIndex`` build at the same size.

When ``BENCH_REPORT_DIR`` is set the summary is written to
``BENCH_db_delta.json`` (consumed by the CI ``delta`` gate and
``repro bench record``; see docs/STORAGE.md).
"""

import json
import os
import time

import pytest

pytest.importorskip("numpy")

from repro.db.columnar import ColumnarTable, DeltaBatch
from repro.db.table import Table
from repro.workloads.sets import generate_delta_stream

#: The CI gates: update-stream and index-build speedups.
MIN_DELTA_SPEEDUP = 5.0
MIN_INDEX_BUILD_SPEEDUP = 3.0

ROWS = 120_000
BATCHES = 24
INSERTS_PER_BATCH = 512
DELETES_PER_BATCH = 256
COLUMNS = {"status": 4, "region": 8, "price": 1000}


@pytest.fixture(scope="module")
def stream():
    return generate_delta_stream(
        ROWS, BATCHES, COLUMNS, inserts_per_batch=INSERTS_PER_BATCH,
        deletes_per_batch=DELETES_PER_BATCH, seed=42)


def _build_columnar(columns, rids=None):
    table = ColumnarTable("orders", columns, rids=rids)
    for name in COLUMNS:
        table.create_index(name)
    return table


def _write_summary(payload):
    directory = os.environ.get("BENCH_REPORT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_db_delta.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _run_incremental(initial, batches):
    table = _build_columnar(initial)
    started = time.perf_counter()
    for batch in batches:
        table.apply_delta(batch)
    return table, time.perf_counter() - started


def _run_rebuild(initial, specs):
    """The pre-columnar behaviour: every batch rebuilds everything.

    Plain-Python column lists absorb the batch, then the table and all
    three indexes are constructed from scratch — the only way the
    row-oriented layer could serve an update before this PR.
    """
    columns = {name: list(values) for name, values in initial.items()}
    rids = list(range(len(columns["status"])))
    next_rid = len(rids)
    table = None
    started = time.perf_counter()
    for spec in specs:
        inserts = spec.get("insert", {})
        count = len(inserts.get("status", ()))
        for name, values in inserts.items():
            columns[name].extend(values)
        rids.extend(range(next_rid, next_rid + count))
        next_rid += count
        dead = set(spec["delete_rids"])
        if dead:
            keep = [position for position, rid in enumerate(rids)
                    if rid not in dead]
            rids = [rids[position] for position in keep]
            columns = {name: [values[position] for position in keep]
                       for name, values in columns.items()}
        table = _build_columnar(columns, rids=rids)
    return table, time.perf_counter() - started


def test_delta_maintenance_vs_rebuild(benchmark, stream):
    """Incremental apply_delta vs per-batch full reconstruction."""
    initial, specs = stream
    batches = [DeltaBatch.from_spec(spec) for spec in specs]

    def serve():
        return _run_incremental(initial, batches)

    incremental, _last = benchmark.pedantic(serve, rounds=3,
                                            iterations=1,
                                            warmup_rounds=1)
    _table, incremental_seconds = _run_incremental(initial, batches)
    rebuilt, rebuild_seconds = _run_rebuild(initial, specs)

    assert incremental.all_rids() == rebuilt.all_rids(), \
        "incremental RID space diverged from the rebuild"
    for name in COLUMNS:
        assert incremental.column(name) == rebuilt.column(name), \
            "column %s diverged" % name
    probe = incremental.index("price")
    assert probe.scan_range(100, 300) \
        == rebuilt.index("price").scan_range(100, 300)
    assert probe.delta_merges > 0

    speedup = rebuild_seconds / incremental_seconds \
        if incremental_seconds else float("inf")

    started = time.perf_counter()
    row_table = Table("orders", initial)
    for name in COLUMNS:
        row_table.create_index(name)
    row_build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    _build_columnar(initial)
    columnar_build_seconds = time.perf_counter() - started
    index_build_speedup = row_build_seconds / columnar_build_seconds \
        if columnar_build_seconds else float("inf")

    summary = {
        "schema": "repro.bench-db-delta/v1",
        "rows": ROWS,
        "batches": BATCHES,
        "inserts_per_batch": INSERTS_PER_BATCH,
        "deletes_per_batch": DELETES_PER_BATCH,
        "parity": True,
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": speedup,
        "row_index_build_seconds": row_build_seconds,
        "columnar_index_build_seconds": columnar_build_seconds,
        "index_build_speedup": index_build_speedup,
        "final_rows": incremental.row_count,
        "rid_limit": incremental.rid_limit(),
        "compactions": incremental.compactions,
        "delta_merges": probe.delta_merges,
    }
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["index_build_speedup"] = \
        round(index_build_speedup, 2)
    benchmark.extra_info["final_rows"] = incremental.row_count
    path = _write_summary(summary)
    if path:
        benchmark.extra_info["report"] = path

    assert speedup >= MIN_DELTA_SPEEDUP, (
        "incremental delta maintenance %.2fx over rebuild is below "
        "the %.1fx gate" % (speedup, MIN_DELTA_SPEEDUP))
    assert index_build_speedup >= MIN_INDEX_BUILD_SPEEDUP, (
        "columnar index build %.2fx over the row-oriented build is "
        "below the %.1fx gate"
        % (index_build_speedup, MIN_INDEX_BUILD_SPEEDUP))
