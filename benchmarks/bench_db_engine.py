"""Meta-benchmark: batched query serving, cost model vs ISS.

Not a paper experiment — this tracks the reproduction's own serving
throughput: the :class:`repro.db.engine.QueryEngine` cost-model fast
path against the ISS serving path it replaced (a per-query executor
loop).  The fast path must agree RID-for-RID and cycle-for-cycle with
an ISS-backed engine and row-for-row with the baseline loop (the
benchmark asserts it); the speedup is what the engine buys.  When
``BENCH_REPORT_DIR``
is set, the summary is written to ``BENCH_db_engine.json`` (consumed
by the CI throughput gate; see docs/QUERY_ENGINE.md).
"""

import json
import os

from repro.db.bench import build_demo_table, demo_queries, run_bench
from repro.db.engine import QueryEngine

#: The CI gate: the cost-model engine must serve batches at least this
#: many times faster than the ISS serving path.
MIN_SPEEDUP = 10.0


def _write_summary(payload):
    directory = os.environ.get("BENCH_REPORT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_db_engine.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def test_engine_batch_throughput(benchmark):
    """Engine batch serving (cost model) vs the ISS serving path."""
    report = run_bench(rows=1600, queries=64, repeat=3, seed=42)
    assert report["rid_parity"], "cost-model RIDs diverged from ISS"
    assert report["cycle_parity"], "cost-model cycles diverged from ISS"
    assert report["row_parity"], "engine rows diverged from baseline"

    table = build_demo_table(rows=1600, seed=42)
    batch = demo_queries(table, count=64, seed=43)
    engine = QueryEngine()  # calibrations are already warm

    def serve():
        return engine.execute_batch(batch)

    results = benchmark.pedantic(serve, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert len(results) == len(batch)

    benchmark.extra_info["queries"] = report["queries"]
    benchmark.extra_info["rows"] = report["rows"]
    benchmark.extra_info["costmodel_qps"] = round(
        report["costmodel"]["queries_per_second"], 1)
    benchmark.extra_info["iss_qps"] = round(
        report["iss"]["queries_per_second"], 1)
    benchmark.extra_info["speedup"] = round(report["speedup"], 2)
    path = _write_summary(report)
    if path:
        benchmark.extra_info["report"] = path

    assert report["speedup"] >= MIN_SPEEDUP, (
        "engine speedup %.1fx below the %.0fx gate"
        % (report["speedup"], MIN_SPEEDUP))


def test_engine_single_query_latency(benchmark):
    """Steady-state single-query latency on the cost-model path."""
    table = build_demo_table(rows=1600, seed=42)
    query = demo_queries(table, count=1, seed=44)[0]
    engine = QueryEngine()
    engine.execute(query)  # warm calibrations and scan cache

    result = benchmark.pedantic(engine.execute, args=(query,),
                                rounds=5, iterations=1,
                                warmup_rounds=1)
    assert result.stats.cycles >= 0
    benchmark.extra_info["cycles"] = result.stats.cycles
    benchmark.extra_info["rows_returned"] = len(result.rows)
