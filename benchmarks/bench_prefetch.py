"""Benchmark E7 — prefetcher streaming validation (Section 5.2 claim)."""

import pytest

from conftest import run_once
from repro.configs.catalog import build_processor
from repro.core.streaming import run_streaming_set_operation
from repro.synth.synthesis import synthesize_config
from repro.workloads.sets import generate_set_pair


@pytest.fixture(scope="module")
def streaming_processor():
    return build_processor("DBA_2LSU_EIS", partial_load=True,
                           prefetcher=True, sim_headroom_kb=1024)


@pytest.mark.parametrize("size", [8_000, 16_000, 32_000, 64_000])
def test_streamed_intersection(benchmark, streaming_processor, size):
    fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
    set_a, set_b = generate_set_pair(size, selectivity=0.5, seed=42)
    result, stats = run_once(benchmark, run_streaming_set_operation,
                             streaming_processor, "intersection",
                             set_a, set_b)
    meps = stats.throughput_meps(2 * size, fmax)
    benchmark.extra_info["throughput_meps"] = round(meps, 1)
    benchmark.extra_info["elements_per_set"] = size
    assert result == sorted(set(set_a) & set(set_b))
    # the claim: streaming stays within ~30% of the local-only rate
    assert meps > 700


def test_overlap_vs_blocking(benchmark, streaming_processor):
    fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
    set_a, set_b = generate_set_pair(32_000, selectivity=0.5, seed=42)

    def both():
        _r, overlapped = run_streaming_set_operation(
            streaming_processor, "intersection", set_a, set_b,
            overlap=True)
        _r, blocking = run_streaming_set_operation(
            streaming_processor, "intersection", set_a, set_b,
            overlap=False)
        return overlapped, blocking

    overlapped, blocking = run_once(benchmark, both)
    benchmark.extra_info["overlap_meps"] = round(
        overlapped.throughput_meps(64_000, fmax), 1)
    benchmark.extra_info["blocking_meps"] = round(
        blocking.throughput_meps(64_000, fmax), 1)
    assert overlapped.cycles < blocking.cycles
