"""Benchmark E10 — compressed RID streaming and the bandwidth
crossover, plus the decode instruction itself."""

import pytest

from conftest import run_once
from repro.configs.catalog import build_processor
from repro.core.compression import run_decompress
from repro.core.streaming import (run_compressed_streaming_set_operation,
                                  run_streaming_set_operation)
from repro.cpu import CoreConfig, Interconnect, Processor
from repro.synth.synthesis import synthesize_config
from repro.workloads.sets import generate_rid_list, generate_set_pair


def test_decode_instruction_rate(benchmark):
    from repro.core.compression import build_compression_extension
    processor = Processor(CoreConfig("d8", dmem0_kb=64,
                                     sim_headroom_kb=64),
                          extensions=[build_compression_extension()])
    rids = generate_rid_list(5000, table_rows=200_000, seed=3)
    output, stats = run_once(benchmark, run_decompress, processor, rids)
    assert output == rids
    benchmark.extra_info["cycles_per_value"] = round(
        stats.cycles / len(rids), 2)


@pytest.mark.parametrize("bytes_per_cycle", [16, 4, 2, 1])
def test_raw_vs_compressed_crossover(benchmark, bytes_per_cycle):
    fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
    size = 16_000
    set_a, set_b = generate_set_pair(size, selectivity=0.5, seed=42,
                                     max_value=16 * size)
    processor = build_processor(
        "DBA_2LSU_EIS", prefetcher=True, compression=True,
        sim_headroom_kb=1024,
        interconnect=Interconnect(bytes_per_cycle=bytes_per_cycle))

    def both():
        _r, raw = run_streaming_set_operation(
            processor, "intersection", set_a, set_b)
        _r, compressed = run_compressed_streaming_set_operation(
            processor, "intersection", set_a, set_b)
        return raw, compressed

    raw, compressed = run_once(benchmark, both)
    benchmark.extra_info["raw_meps"] = round(
        raw.throughput_meps(2 * size, fmax), 1)
    benchmark.extra_info["compressed_meps"] = round(
        compressed.throughput_meps(2 * size, fmax), 1)
    benchmark.extra_info["noc_bytes_per_cycle"] = bytes_per_cycle
