"""Benchmark E2 — the paper's Figure 13 selectivity sweep.

One benchmark per configuration; each sweeps intersection selectivity
from 0 to 100 % at the paper's set size and reports the whole curve.
"""

import pytest

from conftest import run_once
from repro.experiments import figure13

CONFIGS = [("108Mini", None), ("DBA_1LSU", None),
           ("DBA_1LSU_EIS", False), ("DBA_2LSU_EIS", False),
           ("DBA_1LSU_EIS", True), ("DBA_2LSU_EIS", True)]

SELECTIVITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


def _row_id(row):
    name, partial = row
    if partial is None:
        return name
    return "%s-%s" % (name, "pl" if partial else "nopl")


@pytest.mark.parametrize("row", CONFIGS, ids=_row_id)
def test_selectivity_sweep(benchmark, row):
    from repro.configs.catalog import row_label

    result = run_once(benchmark, figure13.run, set_size=5000,
                      selectivities=SELECTIVITIES, rows=[row])
    curve = figure13.series(result, row_label(*row))
    benchmark.extra_info["curve"] = {
        "%d%%" % point: round(value, 1) for point, value in curve}
    # Figure 13's shape: throughput rises with selectivity
    assert curve[-1][1] > curve[0][1]


def test_partial_loading_curves_meet_at_100(benchmark):
    rows = [("DBA_2LSU_EIS", False), ("DBA_2LSU_EIS", True)]
    result = run_once(benchmark, figure13.run, set_size=5000,
                      selectivities=(0.5, 1.0), rows=rows)
    with_pl = dict(figure13.series(result,
                                   "DBA_2LSU_EIS w/ partial load"))
    without = dict(figure13.series(result,
                                   "DBA_2LSU_EIS w/o partial load"))
    benchmark.extra_info["at_50"] = (round(with_pl[50], 1),
                                     round(without[50], 1))
    benchmark.extra_info["at_100"] = (round(with_pl[100], 1),
                                      round(without[100], 1))
    assert with_pl[50] > 1.15 * without[50]
    assert with_pl[100] == pytest.approx(without[100], rel=0.02)
