"""Meta-benchmark: the cost of fault tolerance on the sharded path.

Not a paper experiment — this tracks what the failover machinery of
:class:`repro.db.shard.ShardedEngine` costs when nothing fails (the
fault-free overhead of breakers + checksums + replica planning must
stay negligible) and what a masked worker kill costs when one replica
absorbs it (failover serves every query byte-identical, at bounded
modeled-cycle overhead).  When ``BENCH_REPORT_DIR`` is set the summary
is written to ``BENCH_db_failover.json`` (consumed by the CI ``chaos``
job and ``repro bench record``; see docs/SHARDING.md).
"""

import json
import os

from repro.db.shard import ShardedEngine
from repro.experiments.scale_out import _where_queries, build_demo_table
from repro.faults.db import DbFaultInjector, WorkerKill
from repro.faults.plan import FaultPlan

ROWS = 4096
QUERIES = 16
SHARDS = 4

#: CI gate: a masked kill may cost at most this much modeled-makespan
#: overhead vs the fault-free sharded run (the replica re-serves one
#: shard's WHERE work; everything else is unchanged).
MAX_MASKED_OVERHEAD = 3.0


def _write_summary(payload):
    directory = os.environ.get("BENCH_REPORT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_db_failover.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def test_failover_masked_kill(benchmark):
    """Replicated serving under a worker kill vs fault-free serving."""
    table = build_demo_table(rows=ROWS, seed=42)
    batch = _where_queries(table, QUERIES, seed=49)

    clean = ShardedEngine(shards=SHARDS, replication=1)
    clean.shards_for(table)
    clean_results = clean.execute_batch(batch)
    clean_makespan = sum(r.makespan_cycles for r in clean_results)

    def serve_with_kill():
        engine = ShardedEngine(
            shards=SHARDS, replication=1,
            fault_injector=DbFaultInjector(
                FaultPlan([WorkerKill(0, 0)])))
        return engine, engine.execute_batch(batch)

    engine, results = benchmark.pedantic(serve_with_kill, rounds=3,
                                         iterations=1, warmup_rounds=1)
    assert [r.rids for r in results] \
        == [r.rids for r in clean_results], \
        "failover RIDs diverged from the fault-free run"
    assert all(r.complete for r in results)

    masked_makespan = sum(r.makespan_cycles for r in results)
    overhead = masked_makespan / clean_makespan \
        if clean_makespan else 0.0
    snapshot = engine.metrics_snapshot()
    summary = {
        "schema": "repro.bench-db-failover/v1",
        "rows": ROWS,
        "queries": QUERIES,
        "shards": SHARDS,
        "replication": 1,
        "rid_parity": True,
        "clean_makespan_cycles": clean_makespan,
        "masked_makespan_cycles": masked_makespan,
        "masked_overhead": overhead,
        "failovers": snapshot["db.fault.failovers"],
        "kills": snapshot["db.fault.kills"],
        "breaker_trips": sum(
            snapshot["db.shard.%d.breaker.trips" % index]
            for index in range(SHARDS)),
        "short_circuits": sum(
            snapshot["db.shard.%d.breaker.short_circuits" % index]
            for index in range(SHARDS)),
    }
    benchmark.extra_info["masked_overhead"] = round(overhead, 2)
    benchmark.extra_info["failovers"] = summary["failovers"]
    path = _write_summary(summary)
    if path:
        benchmark.extra_info["report"] = path

    assert overhead <= MAX_MASKED_OVERHEAD, (
        "masked-kill makespan overhead %.2fx above the %.1fx gate"
        % (overhead, MAX_MASKED_OVERHEAD))
