"""Meta-benchmarks: speed of the simulator substrate itself.

Not a paper experiment — these track the reproduction's own usability
(simulated instructions per host second, synthesis-model latency).
"""

from conftest import run_once
from repro.core.scalar_kernels import run_scalar_merge_sort
from repro.workloads.sorting import random_values


def test_simulator_instruction_rate(benchmark, processors):
    """Simulated instructions per host second on the scalar sort."""
    processor = processors[("DBA_1LSU", None)]
    values = random_values(2000, seed=1)

    result, stats = run_once(benchmark, run_scalar_merge_sort,
                             processor, values)
    assert result == sorted(values)
    seconds = benchmark.stats["mean"]
    benchmark.extra_info["instructions"] = stats.instructions
    benchmark.extra_info["sim_instructions_per_second"] = \
        int(stats.instructions / seconds)


def test_eis_simulation_rate(benchmark, processors, paper_sets):
    """Bundles per host second on the EIS intersection kernel."""
    from repro.core.kernels import run_set_operation
    processor = processors[("DBA_2LSU_EIS", True)]
    set_a, set_b = paper_sets
    _result, stats = run_once(benchmark, run_set_operation, processor,
                              "intersection", set_a, set_b)
    seconds = benchmark.stats["mean"]
    benchmark.extra_info["issues_per_second"] = \
        int(stats.instructions / seconds)
