"""Meta-benchmarks: speed of the simulator substrate itself.

Not a paper experiment — these track the reproduction's own usability
(simulated instructions per host second, synthesis-model latency).
The instruction-rate benches time both interpreter modes — the
superblock fast path (default) and the reference loop
(``REPRO_NO_FASTPATH=1``) — and, when ``BENCH_REPORT_DIR`` is set,
write the speedup summary to ``BENCH_simulator.json`` (consumed by the
CI perf smoke; see docs/PERFORMANCE.md).
"""

import json
import os
import time

from conftest import run_once
from repro.core.scalar_kernels import run_scalar_merge_sort
from repro.workloads.sorting import random_values


def _best_of(fn, *args, repeats=3):
    """Best-of-N wall time and the last return value of *fn*."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _time_reference(fn, *args, repeats=3):
    """Best-of-N wall time of *fn* with the fast path disabled."""
    os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        return _best_of(fn, *args, repeats=repeats)
    finally:
        os.environ.pop("REPRO_NO_FASTPATH", None)


def _write_speedup_summary(payload):
    """Write the BENCH_simulator.json speedup record, if requested."""
    directory = os.environ.get("BENCH_REPORT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_simulator.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def test_simulator_instruction_rate(benchmark, processors):
    """Simulated instructions per host second on the scalar sort."""
    processor = processors[("DBA_1LSU", None)]
    values = random_values(2000, seed=1)

    # warm the kernel/fastpath caches so neither mode pays assembly
    # or compile time inside its measurement window
    run_scalar_merge_sort(processor, values)

    result, stats = run_once(benchmark, run_scalar_merge_sort,
                             processor, values)
    assert result == sorted(values)

    fast_seconds, (_fast_result, fast_stats) = _best_of(
        run_scalar_merge_sort, processor, values)
    ref_seconds, (ref_result, ref_stats) = _time_reference(
        run_scalar_merge_sort, processor, values)
    assert ref_result == result
    assert ref_stats.cycles == fast_stats.cycles
    assert fast_stats.stats.metric("cpu.run.fastpath") == 1
    assert ref_stats.stats.metric("cpu.run.fastpath") == 0

    fast_rate = int(fast_stats.instructions / fast_seconds)
    ref_rate = int(ref_stats.instructions / ref_seconds)
    speedup = ref_seconds / fast_seconds
    benchmark.extra_info["instructions"] = stats.instructions
    benchmark.extra_info["sim_instructions_per_second"] = fast_rate
    benchmark.extra_info["sim_instructions_per_second_reference"] = \
        ref_rate
    benchmark.extra_info["fastpath_speedup"] = round(speedup, 2)
    _write_speedup_summary({
        "benchmark": "simulator_fastpath",
        "workload": "scalar merge sort",
        "config": "DBA_1LSU",
        "size": len(values),
        "instructions": fast_stats.instructions,
        "cycles": fast_stats.cycles,
        "fast": {"seconds": fast_seconds,
                 "sim_instructions_per_second": fast_rate},
        "reference": {"seconds": ref_seconds,
                      "sim_instructions_per_second": ref_rate},
        "speedup": round(speedup, 3),
    })


def test_eis_simulation_rate(benchmark, processors, paper_sets):
    """Bundles per host second on the EIS intersection kernel."""
    from repro.core.kernels import run_set_operation
    processor = processors[("DBA_2LSU_EIS", True)]
    set_a, set_b = paper_sets
    run_set_operation(processor, "intersection", set_a, set_b)
    _result, stats = run_once(benchmark, run_set_operation, processor,
                              "intersection", set_a, set_b)
    seconds = benchmark.stats["mean"]
    benchmark.extra_info["issues_per_second"] = \
        int(stats.instructions / seconds)
    ref_seconds, (_ref_result, ref_stats) = _time_reference(
        run_set_operation, processor, "intersection", set_a, set_b,
        repeats=1)
    benchmark.extra_info["issues_per_second_reference"] = \
        int(ref_stats.instructions / ref_seconds)
