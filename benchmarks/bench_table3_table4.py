"""Benchmarks E3/E4 — the synthesis flow (Tables 3 and 4).

Measures the cost of the structural synthesis model itself and reports
the regenerated area/frequency/power numbers next to the paper's.
"""

import pytest

from conftest import run_once
from repro.experiments.table3 import PAPER_TABLE3, ROWS_65NM
from repro.experiments.table4 import PAPER_TABLE4
from repro.synth.synthesis import synthesize_config
from repro.synth.technology import GF_28NM_SLP


@pytest.mark.parametrize("name", ROWS_65NM)
def test_synthesize_65nm(benchmark, name):
    report = run_once(benchmark, synthesize_config, name)
    paper = PAPER_TABLE3[("65nm", name)]
    benchmark.extra_info.update({
        "logic_mm2": round(report.logic_mm2, 3),
        "paper_logic_mm2": paper[0],
        "memory_mm2": round(report.memory_mm2, 3),
        "fmax_mhz": round(report.fmax_mhz),
        "paper_fmax_mhz": paper[2],
        "power_mw": round(report.power_mw, 1),
        "paper_power_mw": paper[3],
    })
    assert report.logic_mm2 == pytest.approx(paper[0], rel=0.05)


def test_synthesize_28nm_shrink(benchmark):
    report = run_once(benchmark, synthesize_config, "DBA_2LSU_EIS",
                      technology=GF_28NM_SLP)
    paper = PAPER_TABLE3[("28nm", "DBA_2LSU_EIS")]
    benchmark.extra_info.update({
        "logic_mm2": round(report.logic_mm2, 3),
        "paper_logic_mm2": paper[0],
        "power_mw": round(report.power_mw, 1),
        "paper_power_mw": paper[3],
    })
    assert report.fmax_mhz == 500.0


def test_table4_breakdown(benchmark):
    def breakdown():
        return synthesize_config("DBA_2LSU_EIS").breakdown()

    shares = run_once(benchmark, breakdown)
    for group, paper_percent in PAPER_TABLE4.items():
        measured = round(shares.get(group, 0.0) * 100, 1)
        benchmark.extra_info[group] = "%.1f%% (paper %.1f%%)" % (
            measured, paper_percent)
        assert measured == pytest.approx(paper_percent, abs=1.0)
