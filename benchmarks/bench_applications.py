"""Application-level benches: query engine, instruction merging,
iso-area scaling (E9)."""

import random

import pytest

from conftest import run_once
from repro.configs.catalog import build_processor
from repro.core.bitops import build_bitops_extension, run_crc32
from repro.cpu import CoreConfig, Processor
from repro.db import Eq, QueryExecutor, Range, Table
from repro.experiments import iso_area


@pytest.fixture(scope="module")
def orders_table():
    rng = random.Random(99)
    n = 3000
    table = Table("orders", {
        "status": [rng.randrange(4) for _ in range(n)],
        "region": [rng.randrange(8) for _ in range(n)],
        "priority": [rng.randrange(10) for _ in range(n)],
        "amount": [rng.randrange(200_000) for _ in range(n)],
    })
    for column in ("status", "region", "priority"):
        table.create_index(column)
    return table


@pytest.mark.parametrize("config", ["DBA_1LSU", "DBA_2LSU_EIS"])
def test_index_anding_query(benchmark, orders_table, config):
    executor = QueryExecutor(build_processor(config))
    predicate = Eq("status", 1) & Eq("region", 2) \
        & Range("priority", 5, 9)
    rids, stats = run_once(benchmark, executor.where, orders_table,
                           predicate)
    benchmark.extra_info["accelerator_cycles"] = stats.cycles
    benchmark.extra_info["rows"] = len(rids)


def test_order_by_query(benchmark, orders_table):
    executor = QueryExecutor(build_processor("DBA_2LSU_EIS"))
    rows, stats = run_once(benchmark, executor.select, orders_table,
                           predicate=Eq("status", 2),
                           order_by="amount", limit=10)
    benchmark.extra_info["accelerator_cycles"] = stats.cycles
    amounts = [row["amount"] for row in rows]
    assert amounts == sorted(amounts)


@pytest.mark.parametrize("hardware", [True, False],
                         ids=["crc_word", "software"])
def test_crc_instruction_merging(benchmark, hardware):
    """Section 2.2's CRC example: merged instruction vs bit loop."""
    processor = Processor(CoreConfig("bitops", dmem0_kb=16,
                                     sim_headroom_kb=0),
                          extensions=[build_bitops_extension()])
    words = list(range(1, 257))
    crc, stats = run_once(benchmark, run_crc32, processor, words,
                          hardware=hardware)
    benchmark.extra_info["cycles_per_word"] = round(
        stats.cycles / len(words), 1)


def test_iso_area_scaling(benchmark):
    result = run_once(benchmark, iso_area.run, sort_size=2048,
                      set_size=2000)
    for row in result.rows:
        if row[1].startswith("pessimistic") and "Q9550" in row[0]:
            benchmark.extra_info["pessimistic_cores"] = row[2]
            assert row[2] > 40
