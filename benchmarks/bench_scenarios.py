"""Scenario benches: realistic RID-algebra query plans (Section 2.3
motivation) on EIS vs the scalar baseline."""

import pytest

from conftest import run_once
from repro.core.kernels import run_set_operation
from repro.core.scalar_kernels import run_scalar_set_operation
from repro.workloads.scenarios import ALL_SCENARIOS


@pytest.mark.parametrize("factory", ALL_SCENARIOS,
                         ids=lambda f: f.__name__)
@pytest.mark.parametrize("config", [("DBA_2LSU_EIS", True),
                                    ("DBA_1LSU", None)],
                         ids=["eis", "scalar"])
def test_scenario(benchmark, processors, factory, config):
    scenario = factory()
    processor = processors[config]
    if config[1] is None:
        def runner(operation, left, right):
            return run_scalar_set_operation(processor, operation, left,
                                            right, validate_input=False)
    else:
        def runner(operation, left, right):
            return run_set_operation(processor, operation, left, right,
                                     validate_input=False)

    result, cycles = run_once(benchmark, scenario.execute, runner)
    benchmark.extra_info["accelerator_cycles"] = cycles
    benchmark.extra_info["result_rows"] = len(result)
    assert result == scenario.oracle()
