"""Benchmark E1 — regenerates the paper's Table 2 row by row.

Each benchmark runs one (configuration, algorithm) cell at the paper's
workload size and reports the modeled throughput (million elements per
second) in ``extra_info`` alongside the paper's value.
"""

import pytest

from conftest import run_once
from repro.core.kernels import run_merge_sort, run_set_operation
from repro.core.scalar_kernels import (run_scalar_merge_sort,
                                       run_scalar_set_operation)
from repro.experiments.table2 import PAPER_TABLE2

ROWS = list(PAPER_TABLE2)

SET_OPS = ("intersection", "union", "difference")


def _row_id(row):
    name, partial = row
    if partial is None:
        return name
    return "%s-%s" % (name, "pl" if partial else "nopl")


@pytest.mark.parametrize("which", SET_OPS)
@pytest.mark.parametrize("row", ROWS, ids=_row_id)
def test_set_operation_cell(benchmark, processors, fmax, paper_sets,
                            row, which):
    name, partial = row
    processor = processors[row]
    set_a, set_b = paper_sets

    if partial is None:
        runner = run_scalar_set_operation
    else:
        runner = run_set_operation

    result, stats = run_once(benchmark, runner, processor, which,
                             set_a, set_b)
    meps = stats.throughput_meps(len(set_a) + len(set_b), fmax[name])
    benchmark.extra_info["throughput_meps"] = round(meps, 1)
    benchmark.extra_info["paper_meps"] = PAPER_TABLE2[row][which]
    benchmark.extra_info["cycles"] = stats.cycles
    assert result  # all three ops produce output at 50% selectivity


@pytest.mark.parametrize("row", ROWS, ids=_row_id)
def test_merge_sort_cell(benchmark, processors, fmax,
                         paper_sort_values, row):
    name, partial = row
    processor = processors[row]
    if partial is None:
        runner = run_scalar_merge_sort
    else:
        runner = run_merge_sort
    result, stats = run_once(benchmark, runner, processor,
                             paper_sort_values)
    meps = stats.throughput_meps(len(paper_sort_values), fmax[name])
    benchmark.extra_info["throughput_meps"] = round(meps, 1)
    benchmark.extra_info["paper_meps"] = PAPER_TABLE2[row]["sort"]
    assert result == sorted(paper_sort_values)
