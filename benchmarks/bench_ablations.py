"""Ablation benches for the design choices DESIGN.md calls out.

* Loop unrolling (paper Section 4: 2.03 cycles/iteration at 32x),
* DMA burst size (Section 3.2: bursts amortize the network setup),
* streaming chunk size (double-buffer granularity),
* union's Result-width bottleneck across selectivities.
"""

import pytest

from conftest import run_once
from repro.configs.catalog import build_processor
from repro.core.kernels import run_set_operation
from repro.core.streaming import run_streaming_set_operation
from repro.cpu.interconnect import Interconnect
from repro.workloads.sets import generate_set_pair


@pytest.mark.parametrize("unroll", [1, 4, 16, 32, 64])
def test_unroll_factor(benchmark, processors, paper_sets, unroll):
    """The paper's unrolling argument: cycles/iteration -> 2 + 1/U."""
    processor = processors[("DBA_2LSU_EIS", True)]
    set_a, set_b = paper_sets
    result, stats = run_once(benchmark, run_set_operation, processor,
                             "intersection", set_a, set_b,
                             unroll=unroll)
    benchmark.extra_info["unroll"] = unroll
    benchmark.extra_info["cycles"] = stats.cycles
    assert result == sorted(set(set_a) & set(set_b))


def test_unroll_scaling_matches_model(processors, paper_sets):
    """cycles(U=1)/cycles(U=32) should approach 3/2.03 (the loop body
    is two bundles plus one amortized jump)."""
    processor = processors[("DBA_2LSU_EIS", True)]
    set_a, set_b = paper_sets
    cycles = {}
    for unroll in (1, 32):
        _r, stats = run_set_operation(processor, "intersection", set_a,
                                      set_b, unroll=unroll)
        cycles[unroll] = stats.cycles
    ratio = cycles[1] / cycles[32]
    assert ratio == pytest.approx(3.0 / 2.03, rel=0.05)


@pytest.mark.parametrize("burst_bytes", [64, 256, 1024, 4096, 12288])
def test_burst_size_bandwidth(benchmark, burst_bytes):
    """Burst transfers amortize the interconnect setup latency."""
    network = Interconnect(setup_latency=60, bytes_per_cycle=16)

    def bandwidth():
        return network.effective_bandwidth(burst_bytes)

    result = run_once(benchmark, bandwidth)
    benchmark.extra_info["bytes_per_cycle"] = round(result, 2)
    benchmark.extra_info["burst_bytes"] = burst_bytes


@pytest.mark.parametrize("chunk_elements", [512, 1024, 2048, 3072])
def test_streaming_chunk_size(benchmark, chunk_elements):
    """Larger double-buffer chunks amortize per-chunk setup overhead."""
    processor = build_processor("DBA_2LSU_EIS", partial_load=True,
                                prefetcher=True, sim_headroom_kb=512)
    set_a, set_b = generate_set_pair(16_000, selectivity=0.5, seed=7)
    result, stats = run_once(benchmark, run_streaming_set_operation,
                             processor, "intersection", set_a, set_b,
                             chunk_elements=chunk_elements)
    benchmark.extra_info["chunk_elements"] = chunk_elements
    benchmark.extra_info["cycles"] = stats.cycles
    assert result == sorted(set(set_a) & set(set_b))


@pytest.mark.parametrize("selectivity", [0.0, 0.5, 1.0])
def test_union_result_width_bottleneck(benchmark, processors,
                                       selectivity):
    """Union emits at most four distinct values per operation (Result
    states, Figure 9), so at low selectivity it trails intersection."""
    processor = processors[("DBA_2LSU_EIS", True)]
    set_a, set_b = generate_set_pair(5000, selectivity=selectivity,
                                     seed=9)

    def run_both():
        _r, union_stats = run_set_operation(processor, "union", set_a,
                                            set_b)
        _r, int_stats = run_set_operation(processor, "intersection",
                                          set_a, set_b)
        return union_stats, int_stats

    union_stats, int_stats = run_once(benchmark, run_both)
    slowdown = union_stats.cycles / int_stats.cycles
    benchmark.extra_info["union_vs_intersect_cycles"] = round(slowdown,
                                                              2)
    assert slowdown >= 0.99
