"""Benchmarks E5/E6/E8 — the x86 comparisons (Tables 5, 6) and the
energy headline."""

import pytest

from conftest import run_once
from repro.experiments import energy, table5, table6
from repro.experiments.table5 import PAPER_TABLE5
from repro.experiments.table6 import PAPER_TABLE6


def test_table5_merge_sort_comparison(benchmark):
    result = run_once(benchmark, table5.run)
    hw = result.row_by("processor", "DBA_2LSU_EIS (hwsort)")
    sw = result.row_by("processor", "Intel Q9550 (swsort)")
    benchmark.extra_info.update({
        "hwsort_meps": hw["throughput_meps"],
        "paper_hwsort_meps":
            PAPER_TABLE5["DBA_2LSU_EIS"]["throughput_meps"],
        "swsort_meps": sw["throughput_meps"],
        "paper_swsort_meps":
            PAPER_TABLE5["Intel Q9550"]["throughput_meps"],
    })
    # the paper's shape: swsort roughly 2x faster in absolute terms
    assert sw["throughput_meps"] > hw["throughput_meps"]
    assert sw["throughput_meps"] < 4 * hw["throughput_meps"]


def test_table6_intersection_comparison(benchmark):
    result = run_once(benchmark, table6.run)
    hw = result.row_by("processor", "DBA_2LSU_EIS (hwset)")
    sw = result.row_by("processor", "Intel i7-920 (swset)")
    benchmark.extra_info.update({
        "hwset_meps": hw["throughput_meps"],
        "paper_hwset_meps":
            PAPER_TABLE6["DBA_2LSU_EIS"]["throughput_meps"],
        "swset_meps": sw["throughput_meps"],
        "paper_swset_meps":
            PAPER_TABLE6["Intel i7-920"]["throughput_meps"],
    })
    # the paper's headline: comparable single-thread throughput
    assert hw["throughput_meps"] \
        == pytest.approx(sw["throughput_meps"], rel=0.25)


def test_energy_headline(benchmark):
    result = run_once(benchmark, energy.run)
    ratio_note = result.notes[0]
    benchmark.extra_info["power_ratio"] = ratio_note
    ratio = float(ratio_note.split(":")[1].split("x")[0])
    assert ratio > 900  # paper: >960x
